"""Exception hierarchy for the RESIN runtime.

The paper's filter/policy protocol signals an assertion failure by raising an
exception from ``export_check`` (Section 3.1).  All exceptions raised by the
reproduction derive from :class:`ResinError` so applications can install a
single handler around output-generating code (the "output buffering" pattern
of Section 5.5).
"""

from __future__ import annotations


class ResinError(Exception):
    """Base class for all RESIN runtime errors."""


class ResinWarning(UserWarning):
    """A non-fatal data-flow hazard the runtime cannot fix itself.

    Emitted (via :mod:`warnings`) where the runtime must proceed but the
    application is probably losing protection — e.g.
    ``TaintedStr.__format__`` discarding a non-empty policy set because the
    interpreter joins f-string pieces as plain ``str``.  Paired with a
    ``policy_dropped`` audit event when a recorder is active, so the hazard
    is forensically visible even when warnings are silenced.
    """


class PolicyViolation(ResinError):
    """A data flow assertion failed.

    Raised by ``Policy.export_check`` (or by a filter object) when data with a
    policy is about to cross a data flow boundary that the policy does not
    allow.  The runtime aborts the offending write and propagates this
    exception to the application.
    """

    def __init__(self, message: str = "data flow assertion failed", *,
                 policy=None, context=None):
        super().__init__(message)
        self.policy = policy
        self.context = dict(context) if context else {}


class AccessDenied(PolicyViolation):
    """An access-control data flow assertion failed (read or write ACL)."""


class DisclosureViolation(PolicyViolation):
    """Confidential data (e.g. a password) was about to be disclosed."""


class InjectionViolation(PolicyViolation):
    """Untrusted data reached a SQL query, HTML output or other sink
    without passing through the required sanitizer."""


class ScriptInjectionViolation(PolicyViolation):
    """Code lacking a ``CodeApproval`` policy was about to be interpreted."""


class MergeError(ResinError):
    """A policy refused to be merged with another operand's policies."""

    def __init__(self, message: str = "policies cannot be merged", *,
                 policy=None, other=None):
        super().__init__(message)
        self.policy = policy
        self.other = other


class FilterError(ResinError):
    """A filter object is mis-configured or was used incorrectly."""


class ChannelError(ResinError):
    """An I/O channel was used after being closed, or is mis-configured."""


class SerializationError(ResinError):
    """A persistent policy could not be serialized or de-serialized."""


class RecoveryError(ResinError):
    """Durable storage recovery cannot proceed safely (e.g. every snapshot
    on disk is corrupt): starting from an empty store would silently lose
    data, so recovery fails loudly instead."""


class SQLError(ResinError):
    """The SQL substrate rejected a query (syntax or execution error)."""


class FileSystemError(ResinError):
    """The in-memory filesystem substrate rejected an operation."""


class HTTPError(ResinError):
    """The web substrate produced an error response."""

    def __init__(self, status: int, message: str = ""):
        super().__init__(message or f"HTTP {status}")
        self.status = status
