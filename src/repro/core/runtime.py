"""Runtime boundary machinery.

This module implements the pieces of the RESIN runtime that are independent
of any particular channel: the export-check helper used by default filters,
and the output buffering mechanism applications use to combine assertions
with exception handling (Section 5.5).

The registry of default filter factories (Section 3.2.1) lives in
:mod:`repro.core.registry` and is *environment-scoped*: each
:class:`~repro.environment.Environment` owns a
:class:`~repro.core.registry.FilterRegistry`.  The deprecated process-wide
mutators (``set_default_filter_factory`` / ``reset_default_filters``) have
been removed — use ``env.registry.set_default_filter_factory(...)`` /
``env.registry.reset()`` or the :class:`~repro.runtime_api.Resin` facade.
The read-only module-level helpers below resolve against the process-wide
default registry that every environment registry chains to.

The full "environment" — filesystem + database + mail + HTTP output + code
interpreter wired together — lives in :mod:`repro.environment`; the fluent
entry point is :class:`repro.runtime_api.Resin`.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from .context import as_context
from .exceptions import FilterError
from .filter import Filter
from .registry import (CHANNEL_TYPES, FilterFactory,  # noqa: F401 (re-export)
                       default_registry)

__all__ = [
    "get_default_filter_factory", "make_default_filter", "check_export",
    "OutputBuffer", "CHANNEL_TYPES",
]


# -- read-only helpers over the process-wide registry ---------------------------
#
# The matching *mutators* (set_default_filter_factory /
# reset_default_filters) were removed after a deprecation cycle: they made
# concurrent environments interfere.  Mutate an Environment's ``registry``
# (or use the ``Resin`` facade) instead.

def get_default_filter_factory(channel_type: str) -> FilterFactory:
    """Resolve a factory from the process-wide registry."""
    return default_registry().get_default_filter_factory(channel_type)


def make_default_filter(channel_type: str,
                        context: Optional[dict] = None) -> Filter:
    """Build a default filter from the process-wide registry.  Channels
    owned by an environment resolve through the environment's registry
    instead."""
    return default_registry().make_default_filter(channel_type, context)


def check_export(data: Any, context: Optional[dict] = None) -> Any:
    """Invoke ``export_check`` on every policy of ``data``.

    This is the enforcement step default filters perform on write; exposed as
    a helper for application-defined filters and for the web substrate.
    Raises whatever the failing policy raises (normally a
    :class:`~repro.core.exceptions.PolicyViolation`).
    """
    from .api import policy_get
    ctx = as_context(context)
    for policy in policy_get(data):
        export_check = getattr(policy, "export_check", None)
        if callable(export_check):
            export_check(ctx)
    return data


class OutputBuffer:
    """Output buffering for exception-driven access checks (Section 5.5).

    An application that lets RESIN assertions *be* its access checks wraps
    page-generation code in a try block.  Output produced inside the block is
    buffered; if an assertion raises, the buffer is discarded (and alternate
    output such as ``"Anonymous"`` may be substituted), otherwise it is
    released to the real channel.

    Buffers nest: each ``start`` pushes a new buffer, and writes go to the
    innermost one.
    """

    def __init__(self, sink: Callable[[Any], None]):
        self._sink = sink
        self._stack: List[List[Any]] = []

    @property
    def buffering(self) -> bool:
        return bool(self._stack)

    @property
    def depth(self) -> int:
        return len(self._stack)

    def write(self, data: Any) -> None:
        """Write ``data`` to the innermost buffer, or straight to the sink if
        no buffering is active."""
        if self._stack:
            self._stack[-1].append(data)
        else:
            self._sink(data)

    def start(self) -> None:
        """Start buffering subsequent writes."""
        self._stack.append([])

    def release(self) -> None:
        """Release the innermost buffer to the enclosing buffer (or to the
        sink if it is the outermost one)."""
        if not self._stack:
            raise FilterError("release() without start()")
        chunk = self._stack.pop()
        for data in chunk:
            self.write(data)

    def discard(self, alternate: Any = None) -> None:
        """Throw away the innermost buffer, optionally writing ``alternate``
        output in its place."""
        if not self._stack:
            raise FilterError("discard() without start()")
        self._stack.pop()
        if alternate is not None:
            self.write(alternate)

    def __enter__(self) -> "OutputBuffer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.release()
        else:
            self.discard()
        return False
