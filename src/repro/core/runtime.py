"""Runtime boundary machinery.

This module implements the pieces of the RESIN runtime that are independent
of any particular channel: the export-check helper used by default filters,
and the output buffering mechanism applications use to combine assertions
with exception handling (Section 5.5).

The registry of default filter factories (Section 3.2.1) lives in
:mod:`repro.core.registry` and is *environment-scoped*: each
:class:`~repro.environment.Environment` owns a
:class:`~repro.core.registry.FilterRegistry`.  The module-level functions
below (``set_default_filter_factory`` and friends) are kept as deprecation
shims over the process-wide default registry for code written against the
pre-registry API.

The full "environment" — filesystem + database + mail + HTTP output + code
interpreter wired together — lives in :mod:`repro.environment`; the fluent
entry point is :class:`repro.runtime_api.Resin`.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, List, Optional

from .context import as_context
from .exceptions import FilterError
from .filter import Filter
from .registry import (CHANNEL_TYPES, FilterFactory,  # noqa: F401 (re-export)
                       default_registry)

__all__ = [
    "set_default_filter_factory", "get_default_filter_factory",
    "make_default_filter", "reset_default_filters", "check_export",
    "OutputBuffer", "CHANNEL_TYPES",
]


# -- deprecation shims over the process-wide registry ---------------------------
#
# These mutate *process-global* state and therefore make concurrent
# environments interfere.  New code should call the same-named methods on an
# Environment's ``registry`` (or use the ``Resin`` facade) instead.

def set_default_filter_factory(channel_type: str,
                               factory: FilterFactory) -> None:
    """Deprecated shim: override a default filter factory *process-wide*.

    Prefer ``env.registry.set_default_filter_factory(...)`` — the scoped
    variant does not leak into other environments in the same process.
    """
    warnings.warn(
        "set_default_filter_factory() mutates the process-wide registry and "
        "is deprecated; use env.registry.set_default_filter_factory(...) or "
        "Resin.set_default_filter(...) for environment-scoped overrides",
        DeprecationWarning, stacklevel=2)
    default_registry().set_default_filter_factory(channel_type, factory)


def get_default_filter_factory(channel_type: str) -> FilterFactory:
    """Deprecated shim: resolve a factory from the process-wide registry."""
    return default_registry().get_default_filter_factory(channel_type)


def make_default_filter(channel_type: str,
                        context: Optional[dict] = None) -> Filter:
    """Deprecated shim: build a default filter from the process-wide
    registry.  Channels owned by an environment resolve through the
    environment's registry instead."""
    return default_registry().make_default_filter(channel_type, context)


def reset_default_filters() -> None:
    """Deprecated shim: restore the built-in default filter on every channel
    type in the *process-wide* registry.

    Environment-scoped overrides (``env.registry``) are unaffected; reset
    those with ``env.registry.reset()``."""
    warnings.warn(
        "reset_default_filters() mutates the process-wide registry and is "
        "deprecated; use env.registry.reset() or Resin.reset_filters() for "
        "environment-scoped overrides",
        DeprecationWarning, stacklevel=2)
    default_registry().reset()


def check_export(data: Any, context: Optional[dict] = None) -> Any:
    """Invoke ``export_check`` on every policy of ``data``.

    This is the enforcement step default filters perform on write; exposed as
    a helper for application-defined filters and for the web substrate.
    Raises whatever the failing policy raises (normally a
    :class:`~repro.core.exceptions.PolicyViolation`).
    """
    from .api import policy_get
    ctx = as_context(context)
    for policy in policy_get(data):
        export_check = getattr(policy, "export_check", None)
        if callable(export_check):
            export_check(ctx)
    return data


class OutputBuffer:
    """Output buffering for exception-driven access checks (Section 5.5).

    An application that lets RESIN assertions *be* its access checks wraps
    page-generation code in a try block.  Output produced inside the block is
    buffered; if an assertion raises, the buffer is discarded (and alternate
    output such as ``"Anonymous"`` may be substituted), otherwise it is
    released to the real channel.

    Buffers nest: each ``start`` pushes a new buffer, and writes go to the
    innermost one.
    """

    def __init__(self, sink: Callable[[Any], None]):
        self._sink = sink
        self._stack: List[List[Any]] = []

    @property
    def buffering(self) -> bool:
        return bool(self._stack)

    @property
    def depth(self) -> int:
        return len(self._stack)

    def write(self, data: Any) -> None:
        """Write ``data`` to the innermost buffer, or straight to the sink if
        no buffering is active."""
        if self._stack:
            self._stack[-1].append(data)
        else:
            self._sink(data)

    def start(self) -> None:
        """Start buffering subsequent writes."""
        self._stack.append([])

    def release(self) -> None:
        """Release the innermost buffer to the enclosing buffer (or to the
        sink if it is the outermost one)."""
        if not self._stack:
            raise FilterError("release() without start()")
        chunk = self._stack.pop()
        for data in chunk:
            self.write(data)

    def discard(self, alternate: Any = None) -> None:
        """Throw away the innermost buffer, optionally writing ``alternate``
        output in its place."""
        if not self._stack:
            raise FilterError("discard() without start()")
        self._stack.pop()
        if alternate is not None:
            self.write(alternate)

    def __enter__(self) -> "OutputBuffer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.release()
        else:
            self.discard()
        return False
