"""Runtime boundary machinery.

This module implements the pieces of the RESIN runtime that are independent
of any particular channel: the registry of default filter factories (so that
every newly created channel of a given type gets the right default filter,
Section 3.2.1), the export-check helper used by those filters, and the output
buffering mechanism applications use to combine assertions with exception
handling (Section 5.5).

The full "environment" — filesystem + database + mail + HTTP output + code
interpreter wired together — lives in :mod:`repro.environment`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .context import FilterContext, as_context
from .exceptions import FilterError
from .filter import DefaultFilter, Filter

__all__ = [
    "set_default_filter_factory", "get_default_filter_factory",
    "make_default_filter", "reset_default_filters", "check_export",
    "OutputBuffer",
]

FilterFactory = Callable[[FilterContext], Filter]

#: Channel types known to the runtime.  Applications may register additional
#: types; these are the ones the paper's default boundary covers.
CHANNEL_TYPES = ("file", "socket", "pipe", "http", "email", "sql", "code")

_default_factories: Dict[str, FilterFactory] = {}


def _builtin_factory(context: FilterContext) -> Filter:
    return DefaultFilter(context)


def set_default_filter_factory(channel_type: str,
                               factory: FilterFactory) -> None:
    """Override the default filter installed on new channels of
    ``channel_type``.

    The paper's script-injection assertion does exactly this for the ``code``
    channel: it replaces the permissive default filter with one that requires
    a ``CodeApproval`` policy (Section 5.2).
    """
    if not callable(factory):
        raise FilterError("filter factory must be callable")
    _default_factories[channel_type] = factory


def get_default_filter_factory(channel_type: str) -> FilterFactory:
    return _default_factories.get(channel_type, _builtin_factory)


def make_default_filter(channel_type: str,
                        context: Optional[dict] = None) -> Filter:
    """Create the default filter for a new channel of ``channel_type``."""
    ctx = as_context(context)
    ctx.setdefault("type", channel_type)
    flt = get_default_filter_factory(channel_type)(ctx)
    if not isinstance(flt, Filter):
        raise FilterError(
            f"default filter factory for {channel_type!r} returned "
            f"{type(flt).__name__}, expected a Filter")
    # The factory may build its own context; make sure the channel context
    # the runtime prepared is visible to it.
    if flt.context is not ctx:
        merged = dict(ctx)
        merged.update(flt.context)
        flt.context = as_context(merged)
    return flt


def reset_default_filters() -> None:
    """Restore the built-in default filter on every channel type.

    Tests and benchmarks use this to isolate runs from each other."""
    _default_factories.clear()


def check_export(data: Any, context: Optional[dict] = None) -> Any:
    """Invoke ``export_check`` on every policy of ``data``.

    This is the enforcement step default filters perform on write; exposed as
    a helper for application-defined filters and for the web substrate.
    Raises whatever the failing policy raises (normally a
    :class:`~repro.core.exceptions.PolicyViolation`).
    """
    from .api import policy_get
    ctx = as_context(context)
    for policy in policy_get(data):
        export_check = getattr(policy, "export_check", None)
        if callable(export_check):
            export_check(ctx)
    return data


class OutputBuffer:
    """Output buffering for exception-driven access checks (Section 5.5).

    An application that lets RESIN assertions *be* its access checks wraps
    page-generation code in a try block.  Output produced inside the block is
    buffered; if an assertion raises, the buffer is discarded (and alternate
    output such as ``"Anonymous"`` may be substituted), otherwise it is
    released to the real channel.

    Buffers nest: each ``start`` pushes a new buffer, and writes go to the
    innermost one.
    """

    def __init__(self, sink: Callable[[Any], None]):
        self._sink = sink
        self._stack: List[List[Any]] = []

    @property
    def buffering(self) -> bool:
        return bool(self._stack)

    @property
    def depth(self) -> int:
        return len(self._stack)

    def write(self, data: Any) -> None:
        """Write ``data`` to the innermost buffer, or straight to the sink if
        no buffering is active."""
        if self._stack:
            self._stack[-1].append(data)
        else:
            self._sink(data)

    def start(self) -> None:
        """Start buffering subsequent writes."""
        self._stack.append([])

    def release(self) -> None:
        """Release the innermost buffer to the enclosing buffer (or to the
        sink if it is the outermost one)."""
        if not self._stack:
            raise FilterError("release() without start()")
        chunk = self._stack.pop()
        for data in chunk:
            self.write(data)

    def discard(self, alternate: Any = None) -> None:
        """Throw away the innermost buffer, optionally writing ``alternate``
        output in its place."""
        if not self._stack:
            raise FilterError("discard() without start()")
        self._stack.pop()
        if alternate is not None:
            self.write(alternate)

    def __enter__(self) -> "OutputBuffer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.release()
        else:
            self.discard()
        return False
