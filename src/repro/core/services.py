"""Environment-scoped application services.

Applications built on RESIN keep singletons the policies need to consult —
phpBB's running board, a wiki's ACL engine, a site's user directory.  The
paper's PHP code reaches them through globals (``$Me`` in HotCRP); the first
Python port of that shape was a module global plus a context variable
(``repro.apps.phpbb.CURRENT_BOARD``), which breaks down as soon as several
environments serve concurrently in one interpreter: a policy evaluated for
environment A could observe the board of environment B.

:class:`ServiceRegistry` replaces that with a per-:class:`~repro.environment
.Environment` name → object mapping (``env.services``).  A policy that needs
its application singleton resolves it through the environment that owns the
channel being checked (``context.env``), so N boards in N environments never
interfere — the same scoping story as the per-environment
:class:`~repro.core.registry.FilterRegistry`.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, List, Optional


class ServiceRegistry:
    """A thread-safe name → service mapping owned by one environment.

    Names are plain dotted strings (``"phpbb.board"``); values are arbitrary
    application objects.  Registration replaces any previous service under
    the same name (the common "the app re-initialized" shape); pass
    ``replace=False`` to make a collision an error instead.
    """

    __slots__ = ("env", "_services", "_lock")

    def __init__(self, env: Any = None):
        #: The environment owning this registry (``None`` for standalone use).
        self.env = env
        self._services: Dict[str, Any] = {}
        self._lock = threading.RLock()

    def register(self, name: str, service: Any, *, replace: bool = True) -> Any:
        """Publish ``service`` under ``name``; returns the service."""
        name = str(name)
        with self._lock:
            if not replace and name in self._services:
                raise LookupError(f"service {name!r} is already registered")
            self._services[name] = service
        return service

    def get(self, name: str, default: Any = None) -> Any:
        """The service registered under ``name``, or ``default``."""
        return self._services.get(str(name), default)

    def resolve(self, name: str) -> Any:
        """The service registered under ``name``; raises ``LookupError`` if
        nothing is registered (use :meth:`get` for the optional flavour)."""
        try:
            return self._services[str(name)]
        except KeyError:
            raise LookupError(
                f"no service {name!r} registered on this environment"
            ) from None

    def unregister(self, name: str) -> Any:
        """Remove and return the service under ``name`` (``None`` if absent)."""
        with self._lock:
            return self._services.pop(str(name), None)

    def names(self) -> List[str]:
        return sorted(self._services)

    def __contains__(self, name: str) -> bool:
        return str(name) in self._services

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._services)

    def __repr__(self) -> str:
        return f"ServiceRegistry({self.names()!r})"


def resolve_service(name: str, context: Any = None, default: Any = None) -> Any:
    """Resolve an application service the way a policy should.

    Resolution order:

    1. the environment carried by ``context`` (``context.env``, set by the
       channel that built the filter context) — the channel being checked
       knows which deployment it belongs to;
    2. the environment of the active
       :class:`~repro.core.request_context.RequestContext`, if any;
    3. ``default``.

    This keeps ``export_check`` implementations free of globals: the board /
    site / wiki the policy consults is always the one owning the boundary
    the data is crossing.
    """
    for env in (_context_env(context), _request_env()):
        if env is None:
            continue
        services = getattr(env, "services", None)
        if services is None:
            continue
        service = services.get(name)
        if service is not None:
            return service
    return default


def _context_env(context: Any) -> Optional[Any]:
    return getattr(context, "env", None)


def _request_env() -> Optional[Any]:
    from .request_context import current_request

    rctx = current_request()
    return rctx.env if rctx is not None else None
