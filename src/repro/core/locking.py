"""Deadlock-free ordered lock registry.

The per-table SQL engine (:class:`repro.sql.engine.Engine`) and the
per-subtree filesystem (:class:`repro.fs.filesystem.FileSystem`) shard one
coarse lock into many named locks the same way: a registry materializes one
reentrant lock per *name* on demand, multi-name critical sections acquire in
sorted-name order, a per-thread stack of held name sets turns an
out-of-order nested acquisition into an immediate error instead of a
deadlock, and a single short-lived *registry lock* (the engine's catalog
lock, the filesystem's dentry lock) guards the directory structure itself
and is always innermost.  :class:`OrderedLockRegistry` is that machinery,
shared; the substrates keep only their naming (tables vs. subtree paths)
and their exception type.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Dict, FrozenSet, Iterator


class OrderedLockRegistry:
    """One reentrant lock per name, acquired only in sorted-name order.

    ``noun`` names the lock domain in error messages (``"table"``,
    ``"subtree"``); ``error`` is the exception type raised on an ordering
    violation; ``hint`` finishes the violation message with the fix.
    """

    def __init__(self, *, noun: str, error: Callable[[str], Exception], hint: str):
        self._noun = noun
        self._error = error
        self._hint = hint
        #: One reentrant lock per name.  Entries persist for the registry's
        #: lifetime (across DROP/re-CREATE, unlink/re-create), so every
        #: thread agrees on the lock identity for a given name.
        self._locks: Dict[str, threading.RLock] = {}
        #: Guards the owner's directory structure *and* lock
        #: materialization.  Innermost by convention: taken last, held only
        #: across the structural mutation, never while waiting for a named
        #: lock.
        self.registry_lock = threading.RLock()
        #: Per-thread stack of the name sets currently held via
        #: :meth:`locked` — what lets an ordering violation fail fast.
        self._held = threading.local()

    def lock(self, name: str) -> threading.RLock:
        """The lock for ``name`` (created on demand, identity stable)."""
        lock = self._locks.get(name)
        if lock is None:
            with self.registry_lock:
                lock = self._locks.setdefault(name, threading.RLock())
        return lock

    def held(self) -> FrozenSet[str]:
        """The names the calling thread currently holds via :meth:`locked`."""
        stack = getattr(self._held, "stack", None)
        if not stack:
            return frozenset()
        return frozenset(set().union(*stack))

    @contextlib.contextmanager
    def locked(self, *names: str) -> Iterator[None]:
        """Hold the locks of every name in ``names`` (sorted-name order).

        Acquiring in deterministic order means two callers locking
        overlapping name sets can never deadlock; reentrant per thread.  A
        nested call may only *add* names that sort after every name already
        held (re-acquiring held names is always fine) — a nested
        acquisition that sorts earlier would break the global ordering and
        could deadlock against another thread, so it raises immediately.
        """
        wanted = sorted(set(names))
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        held = set().union(*stack) if stack else set()
        fresh = [name for name in wanted if name not in held]
        if fresh and held and min(fresh) < max(held):
            raise self._error(
                f"lock ordering violation: cannot acquire {self._noun}(s) "
                f"{fresh!r} while holding {sorted(held)!r}; {self._hint}"
            )
        locks = [self.lock(name) for name in wanted]
        for lock in locks:
            lock.acquire()
        stack.append(set(wanted))
        try:
            yield
        finally:
            stack.pop()
            for lock in reversed(locks):
                lock.release()
