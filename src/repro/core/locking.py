"""Deadlock-free ordered lock registry.

The per-table SQL engine (:class:`repro.sql.engine.Engine`) and the
per-subtree filesystem (:class:`repro.fs.filesystem.FileSystem`) shard one
coarse lock into many named locks the same way: a registry materializes one
reentrant lock per *name* on demand, multi-name critical sections acquire in
sorted-name order, a per-thread stack of held name sets turns an
out-of-order nested acquisition into an immediate error instead of a
deadlock, and a single short-lived *registry lock* (the engine's catalog
lock, the filesystem's dentry lock) guards the directory structure itself
and is always innermost.  :class:`OrderedLockRegistry` is that machinery,
shared; the substrates keep only their naming (tables vs. subtree paths)
and their exception type.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Dict, FrozenSet, Iterator, Optional


class OrderedLockRegistry:
    """One reentrant lock per name, acquired only in sorted-name order.

    ``noun`` names the lock domain in error messages (``"table"``,
    ``"subtree"``); ``error`` is the exception type raised on an ordering
    violation; ``hint`` finishes the violation message with the fix.
    """

    def __init__(self, *, noun: str, error: Callable[[str], Exception], hint: str):
        self._noun = noun
        self._error = error
        self._hint = hint
        #: One reentrant lock per name.  Entries persist for the registry's
        #: lifetime (across DROP/re-CREATE, unlink/re-create), so every
        #: thread agrees on the lock identity for a given name.
        self._locks: Dict[str, threading.RLock] = {}
        #: Guards the owner's directory structure *and* lock
        #: materialization.  Innermost by convention: taken last, held only
        #: across the structural mutation, never while waiting for a named
        #: lock.
        self.registry_lock = threading.RLock()
        #: Per-thread stack of the name sets currently held via
        #: :meth:`locked` — what lets an ordering violation fail fast.
        self._held = threading.local()

    def lock(self, name: str) -> threading.RLock:
        """The lock for ``name`` (created on demand, identity stable)."""
        lock = self._locks.get(name)
        if lock is None:
            with self.registry_lock:
                lock = self._locks.setdefault(name, threading.RLock())
        return lock

    def held(self) -> FrozenSet[str]:
        """The names the calling thread currently holds via :meth:`locked`."""
        stack = getattr(self._held, "stack", None)
        if not stack:
            return frozenset()
        return frozenset(set().union(*stack))

    @contextlib.contextmanager
    def locked(self, *names: str) -> Iterator[None]:
        """Hold the locks of every name in ``names`` (sorted-name order).

        Acquiring in deterministic order means two callers locking
        overlapping name sets can never deadlock; reentrant per thread.  A
        nested call may only *add* names that sort after every name already
        held (re-acquiring held names is always fine) — a nested
        acquisition that sorts earlier would break the global ordering and
        could deadlock against another thread, so it raises immediately.
        """
        wanted = sorted(set(names))
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        held = set().union(*stack) if stack else set()
        fresh = [name for name in wanted if name not in held]
        if fresh and held and min(fresh) < max(held):
            raise self._error(
                f"lock ordering violation: cannot acquire {self._noun}(s) "
                f"{fresh!r} while holding {sorted(held)!r}; {self._hint}"
            )
        locks = [self.lock(name) for name in wanted]
        for lock in locks:
            lock.acquire()
        stack.append(set(wanted))
        try:
            yield
        finally:
            stack.pop()
            for lock in reversed(locks):
                lock.release()


class SharedExclusiveGate:
    """A shared/exclusive gate for rare stop-the-world sections.

    The durability subsystem (:mod:`repro.storage`) uses this to make
    checkpoints atomic with respect to logged mutations: every
    mutate-and-log pair runs under the *shared* side (many at once, cheap),
    while a checkpoint takes the *exclusive* side, waits for in-flight
    pairs to drain, and snapshots a state that matches the log exactly.

    Properties that keep it deadlock-free in this role:

    * the shared side is **reentrant per thread** (a gated region may call
      into another gated region, e.g. the SQL channel's policy-persistence
      sequence wrapping the engine's own mutation);
    * a shared entry only waits while an exclusive section is *running* —
      never for a queued exclusive *waiter*.  The exclusive holder takes no
      other locks (the checkpoint reads plain data structures), so it
      always completes and every blocked shared entry unblocks.  If a
      waiter barred new shared entries instead, a thread that took a
      substrate lock first (``db.transaction``) and the gate second could
      deadlock against a mutator holding the gate and waiting for that
      lock.  The price is that a blocking :meth:`exclusive` can starve
      under a sustained mutation stream — acceptable for checkpoints,
      which are opportunistic anyway.

    :meth:`try_exclusive` is the non-blocking flavour used for
    opportunistic auto-checkpoints: if any shared holder is active it
    returns ``None`` instead of waiting, so it is safe to call from a
    thread that still holds substrate locks.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._shared = 0
        self._shared_waiting = 0
        self._exclusive = False
        self._local = threading.local()

    def shared_depth(self) -> int:
        """The calling thread's shared reentrancy depth (0 = not inside)."""
        return getattr(self._local, "depth", 0)

    @contextlib.contextmanager
    def shared(self) -> Iterator[None]:
        depth = self.shared_depth()
        if depth == 0:
            with self._cond:
                while self._exclusive:
                    self._shared_waiting += 1
                    try:
                        self._cond.wait()
                    finally:
                        self._shared_waiting -= 1
                self._shared += 1
        self._local.depth = depth + 1
        try:
            yield
        finally:
            self._local.depth = depth
            if depth == 0:
                with self._cond:
                    self._shared -= 1
                    if self._shared == 0:
                        self._cond.notify_all()

    @contextlib.contextmanager
    def exclusive(self) -> Iterator[None]:
        if self.shared_depth():
            raise RuntimeError(
                "cannot take the exclusive side of a gate from inside a "
                "shared section (checkpoint called from within a durable "
                "mutation)")
        with self._cond:
            # Yield to mutators blocked by the *previous* exclusive section:
            # without this a back-to-back checkpoint loop could re-acquire
            # before the woken shared waiters get scheduled, starving them.
            while self._exclusive or self._shared or self._shared_waiting:
                self._cond.wait()
            self._exclusive = True
        try:
            yield
        finally:
            with self._cond:
                self._exclusive = False
                self._cond.notify_all()

    def try_exclusive(self) -> Optional[contextlib.AbstractContextManager]:
        """The exclusive side if it is free *right now*, else ``None``.

        Never blocks, so it may be called while holding substrate locks —
        a busy gate just means "skip this opportunity".
        """
        if self.shared_depth():
            return None
        with self._cond:
            if self._exclusive or self._shared:
                return None
            self._exclusive = True

        @contextlib.contextmanager
        def _release():
            try:
                yield
            finally:
                with self._cond:
                    self._exclusive = False
                    self._cond.notify_all()

        return _release()
