"""Core RESIN abstractions: policies, policy sets, filters, the public API,
runtime boundary machinery and persistent-policy serialization."""

from .api import has_policy, policy_add, policy_get, policy_remove, taint, untaint
from .context import FilterContext, as_context
from .exceptions import (AccessDenied, ChannelError, DisclosureViolation,
                         FileSystemError, FilterError, HTTPError,
                         InjectionViolation, MergeError, PolicyViolation,
                         ResinError, ScriptInjectionViolation,
                         SerializationError, SQLError)
from .filter import (DeclassifyFilter, DefaultFilter, Filter, FilterChain,
                     filter_of, guard_function)
from .policy import Policy
from .policyset import PolicySet, as_policyset
from .registry import (CHANNEL_TYPES, FilterRegistry, default_registry,
                       resolve_registry)
from .locking import OrderedLockRegistry
from .request_context import (RequestContext, current_request,
                              request_scoped_context)
from .services import ServiceRegistry, resolve_service
from .runtime import OutputBuffer, check_export, make_default_filter
from .serialization import (deserialize_policy, deserialize_policyset,
                            deserialize_rangemap, dumps_policyset,
                            dumps_rangemap, loads_policyset, loads_rangemap,
                            register_policy_class, serialize_policy,
                            serialize_policyset, serialize_rangemap)

__all__ = [
    # policies
    "Policy", "PolicySet", "as_policyset",
    # API (Table 3)
    "policy_add", "policy_remove", "policy_get", "has_policy", "taint",
    "untaint",
    # filters
    "Filter", "DefaultFilter", "DeclassifyFilter", "FilterChain",
    "guard_function", "filter_of", "FilterContext", "as_context",
    # registry
    "FilterRegistry", "default_registry", "resolve_registry", "CHANNEL_TYPES",
    # request context
    "RequestContext", "current_request", "request_scoped_context",
    # application services
    "ServiceRegistry", "resolve_service",
    # ordered locking (shared by Engine and FileSystem)
    "OrderedLockRegistry",
    # runtime (make_default_filter resolves against the process-wide
    # registry; prefer env.registry / the Resin facade)
    "OutputBuffer", "check_export", "make_default_filter",
    # serialization
    "register_policy_class", "serialize_policy", "deserialize_policy",
    "serialize_policyset", "deserialize_policyset", "serialize_rangemap",
    "deserialize_rangemap", "dumps_policyset", "loads_policyset",
    "dumps_rangemap", "loads_rangemap",
    # exceptions
    "ResinError", "PolicyViolation", "AccessDenied", "DisclosureViolation",
    "InjectionViolation", "ScriptInjectionViolation", "MergeError",
    "FilterError", "ChannelError", "SerializationError", "SQLError",
    "FileSystemError", "HTTPError",
]
