"""Per-request execution state: the :class:`RequestContext` API.

Historically the "current request" was smeared across mutable attributes of
long-lived objects: ``ResinFS.request_context`` held the authenticated user,
``Database.add_filter`` stacked assertion filters for the life of the
environment, and ``Environment`` kept a shared demo HTTP channel.  That
shape assumes one request at a time — two concurrent requests would stomp
each other's user, filters and output.

``RequestContext`` gathers that state into one object and carries it in a
:mod:`contextvars` context variable, so every thread (and every
:class:`contextvars.Context` copy a dispatcher hands to a worker) sees
exactly the request it is serving:

* ``user`` / ``priv_chair`` / ``extra`` — the authenticated principal and
  any additional channel context for the request;
* ``http`` — the request's own HTTP output channel (and therefore its own
  :class:`~repro.core.runtime.OutputBuffer`);
* ``fs_context`` — the filesystem request context persistent filters see;
* a per-database **filter overlay**: filters installed through
  ``Database.add_filter`` while a request is active live here and vanish
  when the request ends, instead of accumulating on the shared engine.

The substrates consult :func:`current_request` instead of mutating their own
attributes, which is what makes a shared :class:`~repro.environment.Environment`
safe to serve from many threads at once (see
:class:`repro.server.dispatcher.Dispatcher`).
"""

from __future__ import annotations

import contextvars
from typing import Any, Dict, List, Optional, Tuple

from .context import FilterContext
from .filter import Filter

__all__ = ["RequestContext", "current_request", "request_scoped_context",
           "stamp_request_id"]

#: The request bound to the running thread/task.  ``None`` means "no request
#: in flight" — the substrates then fall back to their instance attributes,
#: which preserves the old single-request behaviour.
_current: contextvars.ContextVar[Optional["RequestContext"]] = \
    contextvars.ContextVar("resin_request_context", default=None)


def current_request() -> Optional["RequestContext"]:
    """The :class:`RequestContext` active on this thread/task, or ``None``."""
    return _current.get()


def stamp_request_id(env, request=None) -> Optional[int]:
    """The stable id for ``request``, assigned on first stamp.

    Every front end calls this when it binds a :class:`RequestContext`;
    the first caller draws the next id from ``env.next_request_id()`` and
    writes it onto ``request.id``, later (nested) bindings for the same
    request — e.g. the socket server's connection-level context around the
    async dispatcher's own — reuse it, so one request carries exactly one
    id end to end.  Returns ``None`` when ``env`` has no id source.
    """
    if request is not None:
        rid = getattr(request, "id", None)
        if rid is not None:
            return rid
    source = getattr(env, "next_request_id", None)
    rid = source() if callable(source) else None
    if request is not None and rid is not None:
        request.id = rid
    return rid


def request_scoped_context(context) -> FilterContext:
    """A filter context enriched with the active request's principal.

    Filters that live on shared substrates (e.g. a SQL-injection guard on the
    engine's base stack) carry a context that knows nothing about who is
    asking.  When such a filter needs to report or decide per-request, this
    helper overlays the current request's ``user`` (without mutating the
    shared context object).

    When the context carries its owning environment (``context.env``, set by
    the channel that built it), a request bound for a *different*
    environment is ignored — its principal must not be misattributed to
    this environment's violations (the same env check the substrates apply).
    """
    rctx = current_request()
    ctx_env = getattr(context, "env", None)
    if (rctx is not None and ctx_env is not None
            and rctx.env is not ctx_env):
        rctx = None
    if rctx is None:
        ctx = context
        if not isinstance(ctx, FilterContext):
            ctx = FilterContext()
            ctx.update(context or {})
        return ctx
    merged = FilterContext()
    merged.update(context or {})
    if rctx.user is not None:
        merged.setdefault("user", rctx.user)
    if rctx.priv_chair:
        merged.setdefault("priv_chair", True)
    return merged


class RequestContext:
    """Everything the runtime keeps for one in-flight request.

    Use as a context manager (``with RequestContext(env=env, user=u): ...``)
    — entering binds it to the calling thread's context, exiting restores
    whatever was bound before, so request scopes nest naturally.  Enter and
    exit must happen on the same thread; a dispatcher gives each worker its
    own :class:`contextvars.Context` copy and binds inside it.
    """

    def __init__(self, env=None, user: Optional[str] = None, *,
                 priv_chair: bool = False, request=None,
                 http=None, request_id: Optional[int] = None, **extra: Any):
        #: The environment serving this request (shared across requests).
        self.env = env
        #: The authenticated principal, or None for anonymous requests.
        self.user = user
        self.priv_chair = bool(priv_chair)
        #: Environment-unique monotonic id stamped at dispatch time (all
        #: front ends).  Correlates log lines, audit events and violations
        #: for one request; ``None`` for unstamped ad-hoc contexts.
        self.request_id = request_id
        #: The web Request being served, if any (set by WebApplication /
        #: Dispatcher so nested handle() calls recognise their own context).
        self.request = request
        #: The matched route's name and converted path parameters, filled in
        #: by :class:`~repro.web.app.WebApplication` once routing resolves
        #: (``None`` / ``{}`` before dispatch and for unrouted requests).
        self.route: Optional[str] = None
        self.route_params: Dict[str, Any] = {}
        #: This request's HTTP output channel (owns the OutputBuffer).
        self.http = http
        #: Additional channel context (e.g. is_pc) supplied by the caller.
        self.extra: Dict[str, Any] = dict(extra)
        #: The filesystem request context persistent filters consult.
        self.fs_context: Dict[str, Any] = {"user": user}
        #: Per-database filter overlay, keyed by the database object itself
        #: (identity hash; holding the reference also rules out id-reuse
        #: confusion for the request's lifetime).
        self._db_filters: Dict[Any, List[Filter]] = {}
        self._token: Optional[contextvars.Token] = None

    # -- per-request database filter stack ---------------------------------------

    def add_db_filter(self, db, flt: Filter) -> None:
        """Stack ``flt`` on ``db``'s query path for this request only.

        The filter gets its own context (the database's context overlaid with
        the request principal) so concurrent requests never share a mutable
        filter context.
        """
        ctx = FilterContext(type="sql")
        ctx.update(getattr(db, "context", None) or {})
        ctx.update(flt.context)
        ctx["type"] = "sql"
        if self.user is not None:
            ctx.setdefault("user", self.user)
        flt.context = ctx
        self._db_filters.setdefault(db, []).append(flt)

    def db_filters(self, db) -> Tuple[Filter, ...]:
        """The filters this request stacked on ``db`` (in install order)."""
        return tuple(self._db_filters.get(db, ()))

    # -- application services -----------------------------------------------------

    def service(self, name: str, default: Any = None) -> Any:
        """The application service ``name`` published on this request's
        environment (``env.services``), or ``default``.

        Handlers use this instead of module globals to reach the running
        application object (board, wiki, site) for the deployment serving
        the request."""
        services = getattr(self.env, "services", None)
        if services is None:
            return default
        return services.get(name, default)

    # -- binding ------------------------------------------------------------------

    @property
    def active(self) -> bool:
        return self._token is not None

    def __enter__(self) -> "RequestContext":
        if self._token is not None:
            raise RuntimeError("RequestContext is already active")
        self._token = _current.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        token, self._token = self._token, None
        if token is not None:
            _current.reset(token)
        return False

    # contextvars compose with asyncio tasks the same way they do with
    # threads, so the async form just delegates: ``async with
    # RequestContext(...)`` binds the context to the running task (and to
    # nothing else — sibling tasks keep their own bindings).
    async def __aenter__(self) -> "RequestContext":
        return self.__enter__()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        return self.__exit__(exc_type, exc, tb)

    def __repr__(self) -> str:
        state = "active" if self.active else "inactive"
        return (f"RequestContext(user={self.user!r}, {state}, "
                f"db_overlays={sum(map(len, self._db_filters.values()))})")
