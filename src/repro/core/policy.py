"""Policy objects.

A *policy object* (Section 3.3 of the paper) is a language-level object that a
programmer attaches to data.  It carries per-datum metadata (for example, the
e-mail address of a password's owner) and assertion-checking code
(``export_check``).  The RESIN runtime propagates policy objects along with
the data they annotate and invokes them when the data crosses a data flow
boundary guarded by a filter object.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Set

from .exceptions import MergeError


class Policy:
    """Base class for all policy objects.

    Subclasses typically:

    * store per-datum metadata in instance attributes (these are the fields
      that get serialized for persistent policies, see
      :mod:`repro.core.serialization`);
    * implement :meth:`export_check` to assert on export boundaries; and/or
    * override :meth:`merge` to choose a merge strategy other than union.

    Policies are value objects: two policies of the same class with the same
    serializable fields compare equal and hash equal, so that a policy set
    never holds redundant duplicates.
    """

    #: Class-level marker; subclasses representing integrity ("this data has
    #: property X") rather than confidentiality can set this to ``"intersect"``
    #: to get drop-on-merge semantics without overriding :meth:`merge`.
    merge_strategy = "union"

    #: Merge results for policy sets containing this policy may be memoized
    #: per interned ``(left, right)`` pair (:mod:`repro.tracking.merge`).
    #: This is sound whenever :meth:`merge` is a pure function of the two
    #: policy sets — true for the stock strategies and for any value-object
    #: merge.  A policy whose ``merge`` consults outside state (time, a
    #: request context, a counter) must set this to ``False`` to opt out.
    merge_cacheable = True

    def export_check(self, context: Mapping[str, Any]) -> None:
        """Check whether the annotated data may cross a boundary.

        ``context`` describes the boundary (its ``type`` — ``'http'``,
        ``'email'``, ``'file'``, ``'sql'``, … — plus channel-specific keys
        such as the e-mail recipient).  Raise a
        :class:`~repro.core.exceptions.PolicyViolation` to veto the flow;
        return normally to allow it.

        The base implementation allows every flow: a bare :class:`Policy` is
        a pure tracking marker.
        """

    def scan_predicate(self, context: Mapping[str, Any]):
        """Can this policy's verdict for ``context`` be decided *once per
        query plan* instead of once per exported value?

        The enforce mode of :class:`repro.channels.sqlchan.Database` calls
        this while rewriting a query's plan.  Return ``True`` only when the
        policy is a pure principal check — the verdict for the requesting
        context is *allow*, and it would be allow for every channel this
        request can export the value through.  Return ``False`` when the
        verdict is a definite deny (the caller then falls back to attaching
        the policy so the per-row export check raises exactly as in observe
        mode).  Return ``None`` — the base default — when the verdict
        cannot be decided ahead of export (recipient-dependent policies
        like password dispatch, state the check reads at export time, …);
        ``None`` always falls back to per-row checking.
        """
        return None

    def merge(self, other_policies: "PolicySetLike") -> Iterable["Policy"]:
        """Return the policies that should apply to data merged from this
        datum and a datum carrying ``other_policies``.

        Called by the runtime when two data elements are combined in a way
        that cannot be tracked at character level (e.g. integer addition,
        hashing).  The default follows the policy's :attr:`merge_strategy`:

        * ``"union"`` — keep this policy on the result regardless of the
          other operand (confidentiality-style, e.g. ``UntrustedData``);
        * ``"intersect"`` — keep this policy only if the other operand also
          carries a policy of the same class (integrity-style, e.g.
          ``AuthenticData``);
        * ``"reject"`` — refuse the merge entirely by raising
          :class:`~repro.core.exceptions.MergeError`.
        """
        if self.merge_strategy == "union":
            return (self,)
        if self.merge_strategy == "intersect":
            for other in other_policies:
                if isinstance(other, type(self)):
                    return (self,)
            return ()
        if self.merge_strategy == "reject":
            raise MergeError(
                f"{type(self).__name__} does not permit merging",
                policy=self, other=other_policies)
        raise MergeError(
            f"unknown merge strategy {self.merge_strategy!r}", policy=self)

    # -- value-object behaviour -------------------------------------------

    def serializable_fields(self) -> Dict[str, Any]:
        """Return the fields that define this policy's identity and that are
        stored when the policy is persisted (Section 3.4.1: only the class
        name and data fields are serialized, never code)."""
        return {
            key: value
            for key, value in sorted(vars(self).items())
            if not key.startswith("_")
        }

    def _identity(self):
        # Value-object contract: fields are fixed once the policy is in
        # use, so the identity tuple is computed once per instance.  The
        # cache lives in __dict__ under a leading underscore, invisible to
        # serializable_fields and to serialization.
        cached = self.__dict__.get("_identity_cache")
        if cached is not None:
            return cached

        def freeze(value):
            if isinstance(value, dict):
                return tuple(sorted((k, freeze(v)) for k, v in value.items()))
            if isinstance(value, (list, tuple)):
                return tuple(freeze(v) for v in value)
            if isinstance(value, (set, frozenset)):
                return tuple(sorted(freeze(v) for v in value))
            return value

        identity = (type(self), freeze(self.serializable_fields()))
        self.__dict__["_identity_cache"] = identity
        return identity

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Policy):
            return NotImplemented
        return self._identity() == other._identity()

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash_cache")
        if cached is not None:
            return cached
        try:
            value = hash(self._identity())
        except TypeError:
            # Unhashable field values: fall back to identity hashing.
            value = object.__hash__(self)
        self.__dict__["_hash_cache"] = value
        return value

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{k}={v!r}" for k, v in self.serializable_fields().items())
        return f"{type(self).__name__}({fields})"


# Typing helper used in docstrings/signatures; resolved lazily to avoid a
# circular import with policyset.py.
PolicySetLike = Iterable[Policy]


def is_policy(obj: Any) -> bool:
    """Return True if ``obj`` is a policy object."""
    return isinstance(obj, Policy)


def validate_policies(policies: Iterable[Any]) -> Set[Policy]:
    """Validate that every element of ``policies`` is a :class:`Policy` and
    return them as a set."""
    result: Set[Policy] = set()
    for policy in policies:
        if not isinstance(policy, Policy):
            raise TypeError(
                f"expected a Policy instance, got {type(policy).__name__}")
        result.add(policy)
    return result
