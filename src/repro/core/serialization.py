"""Persistent policy serialization.

RESIN stores policies persistently so that data flow assertions keep holding
when data round-trips through files and databases (Section 3.4.1).  Only the
policy's *class name and data fields* are serialized — never code — so a
programmer can evolve a policy class's ``export_check`` without migrating
stored policies.

The wire format is JSON: a policy is ``{"class": "<qualified name>",
"fields": {...}}`` and a byte/character range map is a list of
``[start, stop, [policy, ...]]`` segments.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Type

from .exceptions import SerializationError
from .policy import Policy
from .policyset import PolicySet, as_policyset
from ..tracking.ranges import RangeMap

__all__ = [
    "register_policy_class", "find_policy_class",
    "serialize_policy", "deserialize_policy",
    "serialize_policyset", "deserialize_policyset",
    "serialize_rangemap", "deserialize_rangemap",
    "dumps_policyset", "loads_policyset",
    "dumps_rangemap", "loads_rangemap",
]

_REGISTRY: Dict[str, Type[Policy]] = {}


def qualified_name(cls: Type[Policy]) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def register_policy_class(cls: Type[Policy]) -> Type[Policy]:
    """Register a policy class for de-serialization.

    May be used as a decorator.  Classes defined under the ``repro`` package
    are also found automatically by scanning ``Policy`` subclasses, so
    explicit registration is only needed for application policy classes whose
    module may not be imported at de-serialization time.
    """
    if not (isinstance(cls, type) and issubclass(cls, Policy)):
        raise TypeError("register_policy_class expects a Policy subclass")
    _REGISTRY[qualified_name(cls)] = cls
    _REGISTRY[cls.__qualname__] = cls
    return cls


def _scan_subclasses(base: Type[Policy]) -> Iterable[Type[Policy]]:
    for sub in base.__subclasses__():
        yield sub
        yield from _scan_subclasses(sub)


def find_policy_class(name: str) -> Type[Policy]:
    """Resolve a serialized class name back to a policy class."""
    if name in _REGISTRY:
        return _REGISTRY[name]
    for cls in _scan_subclasses(Policy):
        if qualified_name(cls) == name or cls.__qualname__ == name:
            _REGISTRY[name] = cls
            return cls
    raise SerializationError(f"unknown policy class {name!r}")


def _encode_field(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return {"__seq__": [_encode_field(v) for v in value],
                "__tuple__": isinstance(value, tuple)}
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted(_encode_field(v) for v in value)}
    if isinstance(value, dict):
        return {"__dict__": {str(k): _encode_field(v)
                             for k, v in value.items()}}
    if isinstance(value, Policy):
        return {"__policy__": serialize_policy(value)}
    raise SerializationError(
        f"policy field of type {type(value).__name__} is not serializable")


def _decode_field(value: Any) -> Any:
    if isinstance(value, dict):
        if "__seq__" in value:
            seq = [_decode_field(v) for v in value["__seq__"]]
            return tuple(seq) if value.get("__tuple__") else seq
        if "__set__" in value:
            return set(_decode_field(v) for v in value["__set__"])
        if "__dict__" in value:
            return {k: _decode_field(v) for k, v in value["__dict__"].items()}
        if "__policy__" in value:
            return deserialize_policy(value["__policy__"])
    return value


def serialize_policy(policy: Policy) -> Dict[str, Any]:
    """Serialize one policy to a JSON-able dict (class name + fields)."""
    return {
        "class": qualified_name(type(policy)),
        "fields": {key: _encode_field(value)
                   for key, value in policy.serializable_fields().items()},
    }


def deserialize_policy(record: Dict[str, Any]) -> Policy:
    """Re-create a policy from its serialized form.

    The object is created without invoking ``__init__`` — exactly the fields
    that were stored are restored — so a policy class may change its
    constructor signature without breaking stored policies.
    """
    try:
        cls = find_policy_class(record["class"])
    except KeyError as exc:
        raise SerializationError(f"malformed policy record: {record!r}") from exc
    policy = cls.__new__(cls)
    for key, value in record.get("fields", {}).items():
        setattr(policy, key, _decode_field(value))
    return policy


def serialize_policyset(policies) -> List[Dict[str, Any]]:
    return [serialize_policy(p) for p in as_policyset(policies)]


def deserialize_policyset(records: Iterable[Dict[str, Any]]) -> PolicySet:
    return PolicySet(deserialize_policy(r) for r in records)


def serialize_rangemap(rangemap: RangeMap) -> Dict[str, Any]:
    return {
        "length": rangemap.length,
        "segments": [
            [start, stop, [serialize_policy(p) for p in policies]]
            for start, stop, policies in rangemap.to_segments()
        ],
    }


def deserialize_rangemap(record: Dict[str, Any]) -> RangeMap:
    return RangeMap.from_segments(
        record["length"],
        [(start, stop, [deserialize_policy(p) for p in policies])
         for start, stop, policies in record.get("segments", [])])


def dumps_policyset(policies) -> str:
    """Serialize a policy set to a JSON string."""
    return json.dumps(serialize_policyset(policies), sort_keys=True)


def loads_policyset(text: Optional[str]) -> PolicySet:
    """De-serialize a policy set from a JSON string (None/empty → empty set)."""
    if not text:
        return PolicySet.empty()
    return deserialize_policyset(json.loads(text))


def dumps_rangemap(rangemap: RangeMap) -> str:
    return json.dumps(serialize_rangemap(rangemap), sort_keys=True)


def loads_rangemap(text: Optional[str], length: int = 0) -> RangeMap:
    if not text:
        return RangeMap.empty(length)
    return deserialize_rangemap(json.loads(text))
