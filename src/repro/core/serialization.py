"""Persistent policy serialization.

RESIN stores policies persistently so that data flow assertions keep holding
when data round-trips through files and databases (Section 3.4.1).  Only the
policy's *class name and data fields* are serialized — never code — so a
programmer can evolve a policy class's ``export_check`` without migrating
stored policies.

The wire format is JSON: a policy is ``{"class": "<qualified name>",
"fields": {...}}`` and a byte/character range map is a list of
``[start, stop, [policy, ...]]`` segments.

Two deserialization modes exist.  The strict default raises
:class:`~repro.core.exceptions.SerializationError` on an unknown policy
class.  The *tolerant* mode — used by the durable storage engine
(:mod:`repro.storage`) when recovering a store written by a different
deployment — loads the record as an opaque :class:`UnknownPolicy`
placeholder instead: the data stays readable inside the runtime, the
original record is preserved verbatim for re-serialization, and any attempt
to *export* the data is denied (an unknown assertion must fail closed, not
vanish).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Type

from .exceptions import PolicyViolation, SerializationError
from .policy import Policy
from .policyset import PolicySet, as_policyset
from ..tracking.ranges import RangeMap

__all__ = [
    "register_policy_class", "find_policy_class",
    "serialize_policy", "deserialize_policy",
    "serialize_policyset", "deserialize_policyset",
    "serialize_rangemap", "deserialize_rangemap",
    "dumps_policyset", "loads_policyset",
    "dumps_rangemap", "loads_rangemap",
    "encode_field", "decode_field", "UnknownPolicy",
]

_REGISTRY: Dict[str, Type[Policy]] = {}


def qualified_name(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def register_policy_class(cls: Type[Policy]) -> Type[Policy]:
    """Register a policy class for de-serialization.

    May be used as a decorator.  Classes defined under the ``repro`` package
    are also found automatically by scanning ``Policy`` subclasses, so
    explicit registration is only needed for application policy classes whose
    module may not be imported at de-serialization time.
    """
    if not (isinstance(cls, type) and issubclass(cls, Policy)):
        raise TypeError("register_policy_class expects a Policy subclass")
    _REGISTRY[qualified_name(cls)] = cls
    _REGISTRY[cls.__qualname__] = cls
    return cls


def _scan_subclasses(base: type) -> Iterable[type]:
    for sub in base.__subclasses__():
        yield sub
        yield from _scan_subclasses(sub)


def find_policy_class(name: str) -> Type[Policy]:
    """Resolve a serialized class name back to a policy class."""
    if name in _REGISTRY:
        return _REGISTRY[name]
    for cls in _scan_subclasses(Policy):
        if qualified_name(cls) == name or cls.__qualname__ == name:
            _REGISTRY[name] = cls
            return cls
    raise SerializationError(f"unknown policy class {name!r}")


def _stable_sort_key(encoded: Any) -> str:
    """A total order over already-encoded field values.

    Set members encode to heterogeneous JSON values (strings, numbers,
    tagged dicts for policies/tuples), which Python's ``sorted`` cannot
    compare directly — a set like ``{1, "a"}`` or a set of policies used to
    raise ``TypeError`` here.  The canonical JSON dump is a stable,
    deterministic key for any encoded value.
    """
    return json.dumps(encoded, sort_keys=True)


def encode_field(value: Any) -> Any:
    """Encode one serializable field value to a JSON-able form.

    Public counterpart of the policy field codec: the storage engine uses it
    to persist filter-object fields with exactly the policy rules (data
    only, never code).
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return {"__seq__": [encode_field(v) for v in value],
                "__tuple__": isinstance(value, tuple)}
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted((encode_field(v) for v in value),
                                  key=_stable_sort_key)}
    if isinstance(value, dict):
        return {"__dict__": {str(k): encode_field(v)
                             for k, v in value.items()}}
    if isinstance(value, Policy):
        return {"__policy__": serialize_policy(value)}
    raise SerializationError(
        f"policy field of type {type(value).__name__} is not serializable")


def decode_field(value: Any, *, tolerant: bool = False) -> Any:
    if isinstance(value, dict):
        if "__seq__" in value:
            seq = [decode_field(v, tolerant=tolerant)
                   for v in value["__seq__"]]
            return tuple(seq) if value.get("__tuple__") else seq
        if "__set__" in value:
            return set(decode_field(v, tolerant=tolerant)
                       for v in value["__set__"])
        if "__dict__" in value:
            return {k: decode_field(v, tolerant=tolerant)
                    for k, v in value["__dict__"].items()}
        if "__policy__" in value:
            return deserialize_policy(value["__policy__"], tolerant=tolerant)
    return value


# Backwards-compatible private aliases (pre-storage-engine names).
_encode_field = encode_field
_decode_field = decode_field


class UnknownPolicy(Policy):
    """Placeholder for a stored policy whose class cannot be resolved.

    Recovery must not lose data because one record references a policy class
    this deployment does not ship (Section 3.4.1 stores class names, not
    code).  The placeholder keeps the original record verbatim — so
    re-serializing it round-trips losslessly and a later deployment that
    *does* know the class reads it back intact — and denies every export:
    an assertion we cannot evaluate has to fail closed.
    """

    def __init__(self, class_name: str, record: Optional[dict] = None):
        self.class_name = str(class_name)
        self.record = record if record is not None else {}

    def export_check(self, context: Mapping[str, Any]) -> None:
        raise PolicyViolation(
            f"data carries unknown policy class {self.class_name!r}; "
            "denying export (deny-by-default for unresolvable assertions)",
            policy=self, context=context)

    def __repr__(self) -> str:
        return f"UnknownPolicy({self.class_name!r})"


def serialize_policy(policy: Policy) -> Dict[str, Any]:
    """Serialize one policy to a JSON-able dict (class name + fields)."""
    if isinstance(policy, UnknownPolicy):
        # Round-trip the original record: the placeholder never rewrites
        # what some other deployment stored.
        return {"class": policy.class_name,
                "fields": dict(policy.record.get("fields", {}))}
    return {
        "class": qualified_name(type(policy)),
        "fields": {key: encode_field(value)
                   for key, value in policy.serializable_fields().items()},
    }


def deserialize_policy(record: Dict[str, Any], *,
                       tolerant: bool = False) -> Policy:
    """Re-create a policy from its serialized form.

    The object is created without invoking ``__init__`` — exactly the fields
    that were stored are restored — so a policy class may change its
    constructor signature without breaking stored policies.

    With ``tolerant=True`` an unknown policy class yields an
    :class:`UnknownPolicy` placeholder instead of raising, so one stale
    record cannot make a whole store unrecoverable.
    """
    try:
        name = record["class"]
    except KeyError as exc:
        raise SerializationError(f"malformed policy record: {record!r}") from exc
    try:
        cls = find_policy_class(name)
    except SerializationError:
        if not tolerant:
            raise
        return UnknownPolicy(name, {"class": name,
                                    "fields": dict(record.get("fields", {}))})
    policy = cls.__new__(cls)
    for key, value in record.get("fields", {}).items():
        setattr(policy, key, decode_field(value, tolerant=tolerant))
    return policy


def serialize_policyset(policies) -> List[Dict[str, Any]]:
    return [serialize_policy(p) for p in as_policyset(policies)]


def deserialize_policyset(records: Iterable[Dict[str, Any]], *,
                          tolerant: bool = False) -> PolicySet:
    """Rehydrate a policy set.  Construction interns (see
    :mod:`repro.core.policyset`), so deserializing the same provenance twice
    yields the *same* ``PolicySet`` instance — xattr and WAL recovery rebuild
    pointer-equal sets, which keeps the identity fast paths and the merge
    memo cache effective across restarts."""
    return PolicySet(deserialize_policy(r, tolerant=tolerant)
                     for r in records)


def serialize_rangemap(rangemap: RangeMap) -> Dict[str, Any]:
    return {
        "length": rangemap.length,
        "segments": [
            [start, stop, [serialize_policy(p) for p in policies]]
            for start, stop, policies in rangemap.to_segments()
        ],
    }


def deserialize_rangemap(record: Dict[str, Any], *,
                         tolerant: bool = False) -> RangeMap:
    return RangeMap.from_segments(
        record["length"],
        [(start, stop, [deserialize_policy(p, tolerant=tolerant)
                        for p in policies])
         for start, stop, policies in record.get("segments", [])])


def dumps_policyset(policies) -> str:
    """Serialize a policy set to a JSON string."""
    return json.dumps(serialize_policyset(policies), sort_keys=True)


def loads_policyset(text: Optional[str], *,
                    tolerant: bool = False) -> PolicySet:
    """De-serialize a policy set from a JSON string (None/empty → empty set)."""
    if not text:
        return PolicySet.empty()
    return deserialize_policyset(json.loads(text), tolerant=tolerant)


def dumps_rangemap(rangemap: RangeMap) -> str:
    return json.dumps(serialize_rangemap(rangemap), sort_keys=True)


def loads_rangemap(text: Optional[str], length: int = 0, *,
                   tolerant: bool = False) -> RangeMap:
    if not text:
        return RangeMap.empty(length)
    return deserialize_rangemap(json.loads(text), tolerant=tolerant)
