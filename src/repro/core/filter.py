"""Filter objects.

A *filter object* (Section 3.2) is a generic interposition mechanism that
defines a data flow boundary.  Filters are attached to I/O channels (files,
sockets, pipes, HTTP output, e-mail, SQL, code import) or to function-call
interfaces.  When data crosses the boundary the runtime invokes the filter's
``filter_read`` / ``filter_write`` / ``filter_func`` method, which can check
or rewrite the in-transit data — typically by invoking ``export_check`` on
the policies of the data (the :class:`DefaultFilter` behaviour, Figure 3).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Iterable, List, Optional, Sequence, Type

from .context import FilterContext, as_context
from .policy import Policy
from .exceptions import FilterError, PolicyViolation

#: Lazily-bound :func:`repro.audit.recorder.recorder_for` (audit imports
#: core, so core reaches back only on first use, and only if something
#: enabled audit for this process — the common no-audit path pays one
#: module-global check).
_recorder_for = None


def _audit_recorder(context):
    """The recorder observing this boundary's environment, or ``None``."""
    global _recorder_for
    if _recorder_for is None:
        from ..audit.recorder import recorder_for
        _recorder_for = recorder_for
    return _recorder_for(getattr(context, "env", None))


class Filter:
    """Base class for filter objects.

    A filter holds a :class:`~repro.core.context.FilterContext` describing
    the channel it guards.  Subclasses override one or more of the three
    interposition hooks; the base implementations pass data through
    unchanged.
    """

    def __init__(self, context: Optional[dict] = None):
        self.context: FilterContext = as_context(context)

    def filter_read(self, data: Any, offset: int = 0) -> Any:
        """Invoked when data enters the runtime through this boundary.

        May assign initial policies (e.g. de-serialize persistent policies
        from storage, or mark network input as untrusted) and may rewrite the
        data.  Returns the (possibly re-annotated) data.
        """
        return data

    def filter_write(self, data: Any, offset: int = 0) -> Any:
        """Invoked when data leaves the runtime through this boundary.

        Typically checks assertions (via the policies' ``export_check``) or
        serializes policies to persistent storage.  Returns the data that
        should actually be written.
        """
        return data

    def filter_func(self, func: Callable, args: tuple, kwargs: dict) -> Any:
        """Invoked in place of a guarded function call; checks and/or proxies
        the call.  The default simply forwards the call."""
        return func(*args, **kwargs)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.context.describe()})"


class DefaultFilter(Filter):
    """The filter RESIN installs by default on every I/O channel.

    On write, it invokes ``export_check`` on every policy of the outgoing
    data, passing the filter's context (Figure 3 of the paper).  Data with no
    policy always passes.  On read it passes data through unchanged;
    channel-specific default filters (file, SQL) extend it to de-serialize
    persistent policies.
    """

    def filter_write(self, data: Any, offset: int = 0) -> Any:
        from .api import policy_get
        policies = policy_get(data)
        if not policies:
            return data
        recorder = _audit_recorder(self.context)
        if recorder is None:
            for policy in policies:
                export_check = getattr(policy, "export_check", None)
                if callable(export_check):
                    export_check(self.context)
            return data
        # Audited path: same checks, same order, same exceptions — the
        # recorder only observes the verdict (deny re-raises unchanged).
        rangemap = getattr(data, "rangemap", None)
        try:
            for policy in policies:
                export_check = getattr(policy, "export_check", None)
                if callable(export_check):
                    export_check(self.context)
        except PolicyViolation as exc:
            recorder.record("export", verdict="deny", context=self.context,
                            policies=policies, rangemap=rangemap,
                            violation=exc)
            raise
        recorder.record("export", verdict="allow", context=self.context,
                        policies=policies, rangemap=rangemap)
        return data

    def filter_func(self, func: Callable, args: tuple, kwargs: dict) -> Any:
        from .api import policy_get
        recorder = _audit_recorder(self.context)
        checked: list = []
        for value in list(args) + list(kwargs.values()):
            policies = policy_get(value)
            if not policies:
                continue
            try:
                for policy in policies:
                    export_check = getattr(policy, "export_check", None)
                    if callable(export_check):
                        export_check(self.context)
            except PolicyViolation as exc:
                if recorder is not None:
                    recorder.record(
                        "export", verdict="deny", context=self.context,
                        policies=policies,
                        rangemap=getattr(value, "rangemap", None),
                        violation=exc)
                raise
            if recorder is not None:
                checked.extend(policies)
        if recorder is not None and checked:
            recorder.record("export", verdict="allow", context=self.context,
                            policies=checked)
        return func(*args, **kwargs)


class DeclassifyFilter(Filter):
    """A filter that strips policies of given types from data flowing through.

    The paper's example (Section 3.2) is an encryption function: once data is
    encrypted it no longer needs its confidentiality policy, so the filter on
    the encryption boundary removes it.
    """

    def __init__(self, policy_types: Sequence[Type[Policy]],
                 context: Optional[dict] = None):
        super().__init__(context)
        self.policy_types = tuple(policy_types)

    def _strip(self, data: Any) -> Any:
        for policy_type in self.policy_types:
            remover = getattr(data, "without_policy_type", None)
            if callable(remover):
                data = remover(policy_type)
        return data

    def filter_write(self, data: Any, offset: int = 0) -> Any:
        return self._strip(data)

    def filter_read(self, data: Any, offset: int = 0) -> Any:
        return self._strip(data)

    def filter_func(self, func: Callable, args: tuple, kwargs: dict) -> Any:
        result = func(*args, **kwargs)
        return self._strip(result)


class FilterChain(Filter):
    """Several filters applied in order on the same boundary.

    An application can stack its own filter on top of the channel's default
    filter; writes traverse the chain first-to-last, reads last-to-first.
    """

    def __init__(self, filters: Iterable[Filter],
                 context: Optional[dict] = None):
        super().__init__(context)
        self.filters: List[Filter] = list(filters)
        for flt in self.filters:
            if not isinstance(flt, Filter):
                raise FilterError(f"not a Filter: {flt!r}")

    def append(self, flt: Filter) -> None:
        if not isinstance(flt, Filter):
            raise FilterError(f"not a Filter: {flt!r}")
        self.filters.append(flt)

    def filter_write(self, data: Any, offset: int = 0) -> Any:
        for flt in self.filters:
            data = flt.filter_write(data, offset)
        return data

    def filter_read(self, data: Any, offset: int = 0) -> Any:
        for flt in reversed(self.filters):
            data = flt.filter_read(data, offset)
        return data

    def filter_func(self, func: Callable, args: tuple, kwargs: dict) -> Any:
        call = func
        for flt in reversed(self.filters):
            call = functools.partial(_apply_func_filter, flt, call)
        return call(*args, **kwargs)


def _apply_func_filter(flt: Filter, func: Callable, *args, **kwargs):
    return flt.filter_func(func, args, kwargs)


def guard_function(func: Callable, flt: Filter) -> Callable:
    """Attach a filter object to a function-call interface.

    Returns a wrapper that routes every call through ``flt.filter_func``
    (the function-call flavour of a data flow boundary, Table 3).
    """

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        return flt.filter_func(func, args, kwargs)

    wrapper.__resin_filter__ = flt
    wrapper.__wrapped__ = func
    return wrapper


def filter_of(obj: Any) -> Optional[Filter]:
    """Return the filter object guarding ``obj``, if any.

    Channels expose their filter as ``obj.filter`` (the paper's examples use
    the spelling ``sock.__filter``); guarded functions expose it as
    ``func.__resin_filter__``.
    """
    flt = getattr(obj, "__resin_filter__", None)
    if isinstance(flt, Filter):
        return flt
    flt = getattr(obj, "filter", None)
    if isinstance(flt, Filter):
        return flt
    return None
