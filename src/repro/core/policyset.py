"""Policy sets.

A datum may carry several policies at once (one per data flow assertion that
cares about it), collected in its *policy set* (Section 3.4).  ``PolicySet``
is an immutable, hashable container so that the character-range machinery in
:mod:`repro.tracking` can share and compare policy sets cheaply.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple, Type

from .policy import Policy, validate_policies


def _sort_key(policy: Policy) -> Tuple[str, str]:
    """The deterministic ordering key, computed once per policy instance
    (repr walks the serializable fields; value objects never change them)."""
    key = policy.__dict__.get("_sort_key_cache")
    if key is None:
        key = (type(policy).__name__, repr(policy))
        policy.__dict__["_sort_key_cache"] = key
    return key


class PolicySet:
    """An immutable set of :class:`~repro.core.policy.Policy` objects."""

    __slots__ = ("_policies", "_hash")

    def __init__(self, policies: Iterable[Policy] = ()):
        validated = validate_policies(policies)
        if len(validated) > 1:
            self._policies: Tuple[Policy, ...] = tuple(
                sorted(validated, key=_sort_key))
        else:  # nothing to order — the overwhelmingly common case
            self._policies = tuple(validated)
        self._hash: Optional[int] = None

    # -- factory helpers ---------------------------------------------------

    @classmethod
    def empty(cls) -> "PolicySet":
        return _EMPTY

    @classmethod
    def of(cls, *policies: Policy) -> "PolicySet":
        return cls(policies)

    # -- set operations ----------------------------------------------------

    def add(self, policy: Policy) -> "PolicySet":
        """Return a new set with ``policy`` added."""
        if policy in self:
            return self
        return PolicySet(self._policies + (policy,))

    def remove(self, policy: Policy) -> "PolicySet":
        """Return a new set with ``policy`` removed (no error if absent)."""
        if policy not in self:
            return self
        return PolicySet(p for p in self._policies if p != policy)

    def union(self, other: Iterable[Policy]) -> "PolicySet":
        extra = tuple(other)
        if not extra:
            return self
        if not self._policies and isinstance(other, PolicySet):
            return other
        return PolicySet(self._policies + extra)

    def intersection(self, other: Iterable[Policy]) -> "PolicySet":
        other_set = set(other)
        return PolicySet(p for p in self._policies if p in other_set)

    def difference(self, other: Iterable[Policy]) -> "PolicySet":
        other_set = set(other)
        return PolicySet(p for p in self._policies if p not in other_set)

    def without_type(self, policy_type: Type[Policy]) -> "PolicySet":
        """Return a new set with every policy of ``policy_type`` removed.

        Useful for declassification-style filters, e.g. an encryption
        boundary that strips confidentiality policies (Section 3.2).
        """
        return PolicySet(
            p for p in self._policies if not isinstance(p, policy_type))

    def of_type(self, policy_type: Type[Policy]) -> Tuple[Policy, ...]:
        """Return the policies in this set that are instances of
        ``policy_type``."""
        return tuple(p for p in self._policies if isinstance(p, policy_type))

    def has_type(self, policy_type: Type[Policy]) -> bool:
        return any(isinstance(p, policy_type) for p in self._policies)

    # -- container protocol -------------------------------------------------

    def __iter__(self) -> Iterator[Policy]:
        return iter(self._policies)

    def __len__(self) -> int:
        return len(self._policies)

    def __bool__(self) -> bool:
        return bool(self._policies)

    def __contains__(self, policy: object) -> bool:
        return policy in self._policies

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PolicySet):
            return set(self._policies) == set(other._policies)
        if isinstance(other, (set, frozenset, tuple, list)):
            return set(self._policies) == set(other)
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._policies))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(repr(p) for p in self._policies)
        return f"PolicySet({{{inner}}})"


_EMPTY = PolicySet()


def as_policyset(value) -> PolicySet:
    """Coerce ``value`` (None, a Policy, an iterable of policies, or a
    PolicySet) into a :class:`PolicySet`."""
    if value is None:
        return _EMPTY
    if isinstance(value, PolicySet):
        return value
    if isinstance(value, Policy):
        return PolicySet((value,))
    return PolicySet(value)
