"""Policy sets.

A datum may carry several policies at once (one per data flow assertion that
cares about it), collected in its *policy set* (Section 3.4).  ``PolicySet``
is an immutable, hashable container so that the character-range machinery in
:mod:`repro.tracking` can share and compare policy sets cheaply.

Policy sets are **hash-consed**: construction interns every set in a
process-wide weak table keyed by its frozen policy identity, so two sets
built from equal policies are the *same object*.  Identical provenance is
therefore pointer equality, which the taint hot path exploits: range-map
coalescing compares interned sets by identity first, and the merge protocol
(:mod:`repro.tracking.merge`) memoizes results per ``(left, right)``
interned pair.  Deserialization rehydrates to the interned instance for the
same reason.  The table holds only weak references — sets no live value
points at are collected normally.
"""

from __future__ import annotations

import threading
import weakref
from typing import Iterable, Iterator, Optional, Tuple, Type

from .policy import Policy, validate_policies


def _sort_key(policy: Policy) -> Tuple[str, str]:
    """The deterministic ordering key, computed once per policy instance
    (repr walks the serializable fields; value objects never change them)."""
    key = policy.__dict__.get("_sort_key_cache")
    if key is None:
        key = (type(policy).__name__, repr(policy))
        policy.__dict__["_sort_key_cache"] = key
    return key


class PolicySet:
    """An immutable, interned set of :class:`~repro.core.policy.Policy`
    objects.

    ``PolicySet(policies)`` returns the one canonical instance for that
    collection of policies: equal sets are identical (``a == b`` implies
    ``a is b``).  All state is built in :meth:`__new__`; ``__init__`` is a
    no-op so an interned hit is returned untouched.
    """

    __slots__ = ("_policies", "_hash", "_merge_profile", "_merge_cacheable",
                 "__weakref__")

    #: Process-wide intern table: frozenset of policies -> canonical set.
    _intern_table: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()
    _intern_lock = threading.Lock()

    def __new__(cls, policies: Iterable[Policy] = ()):
        validated = validate_policies(policies)
        if len(validated) > 1:
            ordered: Tuple[Policy, ...] = tuple(
                sorted(validated, key=_sort_key))
        else:  # nothing to order — the overwhelmingly common case
            ordered = tuple(validated)
        if cls is not PolicySet:
            # Subclasses opt out of interning (identity would otherwise be
            # shared across classes); none exist in-tree.
            self = super().__new__(cls)
            self._init_state(ordered)
            return self
        key = frozenset(ordered)
        table = PolicySet._intern_table
        with PolicySet._intern_lock:
            existing = table.get(key)
            if existing is not None:
                return existing
            self = super().__new__(cls)
            self._init_state(ordered)
            table[key] = self
            return self

    def __init__(self, policies: Iterable[Policy] = ()):
        # All state is built in __new__ so that interned instances are
        # returned as-is; re-running initialization here would clobber them.
        pass

    def _init_state(self, ordered: Tuple[Policy, ...]) -> None:
        self._policies = ordered
        self._hash: Optional[int] = None
        self._merge_profile: Optional[str] = None
        self._merge_cacheable: Optional[bool] = None

    # -- factory helpers ---------------------------------------------------

    @classmethod
    def empty(cls) -> "PolicySet":
        return _EMPTY

    @classmethod
    def of(cls, *policies: Policy) -> "PolicySet":
        return cls(policies)

    # -- set operations ----------------------------------------------------

    def add(self, policy: Policy) -> "PolicySet":
        """Return a new set with ``policy`` added."""
        if policy in self:
            return self
        return PolicySet(self._policies + (policy,))

    def remove(self, policy: Policy) -> "PolicySet":
        """Return a new set with ``policy`` removed (no error if absent)."""
        if policy not in self:
            return self
        return PolicySet(p for p in self._policies if p != policy)

    def union(self, other: Iterable[Policy]) -> "PolicySet":
        if other is self:
            return self
        if isinstance(other, PolicySet):
            extra = other._policies
            if not extra:
                return self
            if not self._policies:
                return other
        else:
            extra = tuple(other)
            if not extra:
                return self
        mine = self._policies
        fresh = tuple(p for p in extra if p not in mine)
        if not fresh:
            return self
        return PolicySet(mine + fresh)

    def intersection(self, other: Iterable[Policy]) -> "PolicySet":
        other_set = set(other)
        return PolicySet(p for p in self._policies if p in other_set)

    def difference(self, other: Iterable[Policy]) -> "PolicySet":
        other_set = set(other)
        return PolicySet(p for p in self._policies if p not in other_set)

    def without_type(self, policy_type: Type[Policy]) -> "PolicySet":
        """Return a new set with every policy of ``policy_type`` removed.

        Useful for declassification-style filters, e.g. an encryption
        boundary that strips confidentiality policies (Section 3.2).
        """
        return PolicySet(
            p for p in self._policies if not isinstance(p, policy_type))

    def of_type(self, policy_type: Type[Policy]) -> Tuple[Policy, ...]:
        """Return the policies in this set that are instances of
        ``policy_type``."""
        return tuple(p for p in self._policies if isinstance(p, policy_type))

    def has_type(self, policy_type: Type[Policy]) -> bool:
        return any(isinstance(p, policy_type) for p in self._policies)

    # -- merge-protocol introspection (used by repro.tracking.merge) --------

    def merge_profile(self) -> str:
        """How this set behaves under the merge protocol.

        * ``"union"`` — every policy uses the stock ``Policy.merge`` with the
          ``"union"`` strategy: merging never drops or invents policies.
        * ``"default"`` — stock ``Policy.merge`` throughout, but at least one
          policy uses ``"intersect"``.
        * ``"custom"`` — an overridden ``merge`` or any other strategy
          (including ``"reject"``); no shortcut may skip the protocol.

        Computed once per interned instance (value-object contract: policy
        classes do not change their merge behaviour at runtime).
        """
        profile = self._merge_profile
        if profile is None:
            profile = "union"
            for policy in self._policies:
                if (type(policy).merge is not Policy.merge
                        or policy.merge_strategy not in ("union",
                                                         "intersect")):
                    profile = "custom"
                    break
                if policy.merge_strategy == "intersect":
                    profile = "default"
            self._merge_profile = profile
        return profile

    def merge_cacheable(self) -> bool:
        """True if every member opts into merge memoization
        (``Policy.merge_cacheable``, default True)."""
        cacheable = self._merge_cacheable
        if cacheable is None:
            cacheable = all(getattr(p, "merge_cacheable", True)
                            for p in self._policies)
            self._merge_cacheable = cacheable
        return cacheable

    # -- container protocol -------------------------------------------------

    def __iter__(self) -> Iterator[Policy]:
        return iter(self._policies)

    def __len__(self) -> int:
        return len(self._policies)

    def __bool__(self) -> bool:
        return bool(self._policies)

    def __contains__(self, policy: object) -> bool:
        return policy in self._policies

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if isinstance(other, PolicySet):
            return set(self._policies) == set(other._policies)
        if isinstance(other, (set, frozenset, tuple, list)):
            return set(self._policies) == set(other)
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._policies))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(repr(p) for p in self._policies)
        return f"PolicySet({{{inner}}})"

    # -- copy / pickle safety ------------------------------------------------

    # Interned value objects: copying must never produce a second live
    # instance for the same policies (identity is the interning contract).

    def __copy__(self) -> "PolicySet":
        return self

    def __deepcopy__(self, memo) -> "PolicySet":
        return self

    def __reduce__(self):
        return (PolicySet, (tuple(self._policies),))


_EMPTY = PolicySet()


def as_policyset(value) -> PolicySet:
    """Coerce ``value`` (None, a Policy, an iterable of policies, or a
    PolicySet) into a :class:`PolicySet`."""
    if value is None:
        return _EMPTY
    if isinstance(value, PolicySet):
        return value
    if isinstance(value, Policy):
        return PolicySet((value,))
    return PolicySet(value)
