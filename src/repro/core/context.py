"""Filter contexts.

A filter object carries a *context* — a hash table describing the specific
I/O channel it guards (Section 3.2.1).  The runtime pre-populates the context
of default filters (e.g. the recipient address of an outgoing e-mail channel,
the authenticated user of an HTTP connection) and the application may add its
own key/value pairs.  The context is passed as the argument to every
``export_check`` call.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional


class FilterContext(dict):
    """A mutable mapping describing a data flow boundary.

    Well-known keys used by the default filters and the standard policies:

    ``type``
        The channel type: ``'http'``, ``'email'``, ``'file'``, ``'socket'``,
        ``'pipe'``, ``'sql'``, ``'code'``.
    ``email``
        Recipient address of an outgoing e-mail channel.
    ``user``
        Authenticated user on the other end of an HTTP connection.
    ``path``
        Path of a file channel.
    ``url``
        Request URL of an HTTP channel.

    A context may additionally carry the :class:`~repro.environment
    .Environment` that owns its channel in the :attr:`env` *attribute* (not
    a mapping key, so it never appears in violation messages).  Request-
    scoped helpers use it to ignore requests bound for other environments.
    """

    #: The environment owning this context's channel, if known.
    env: Any = None

    def __init__(self, type: Optional[str] = None, **kwargs: Any):
        super().__init__()
        if type is not None:
            self["type"] = type
        self.update(kwargs)

    @property
    def channel_type(self) -> Optional[str]:
        return self.get("type")

    def child(self, **overrides: Any) -> "FilterContext":
        """A copy of this context with ``overrides`` applied; used when a
        channel forks (e.g. per-request HTTP output)."""
        ctx = FilterContext()
        ctx.update(self)
        ctx.update(overrides)
        return ctx

    def describe(self) -> str:
        """Human-readable one-line description (used in violation messages)."""
        parts = [f"{key}={self[key]!r}" for key in sorted(self)]
        return ", ".join(parts) or "<empty context>"


def as_context(value: Optional[Mapping[str, Any]]) -> FilterContext:
    """Coerce ``value`` into a :class:`FilterContext`."""
    if isinstance(value, FilterContext):
        return value
    ctx = FilterContext()
    if value:
        ctx.update(value)
    return ctx
