"""Filesystem substrate: in-memory storage with xattrs plus the RESIN-aware
layer (persistent policies and persistent filter objects)."""

from . import path
from .filesystem import FileSystem, Inode, Stat
from .resinfs import FILTER_XATTR, POLICY_XATTR, ResinFS, ResinFile

__all__ = [
    "path",
    "FileSystem",
    "Inode",
    "Stat",
    "ResinFS",
    "ResinFile",
    "POLICY_XATTR",
    "FILTER_XATTR",
]
