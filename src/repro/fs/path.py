"""Path handling for the in-memory filesystem.

Paths are POSIX-style (``/`` separated, absolute from the filesystem root).
``normalize`` resolves ``.`` and ``..`` components the way a real kernel
does — including letting ``..`` climb above an application's intended base
directory.  That behaviour is deliberate: directory traversal attacks
(Section 2, Data Flow Assertion 2) only exist because path resolution is
*not* confined, and the RESIN write-access filters are what must stop them.
"""

from __future__ import annotations

from typing import List, Tuple

SEPARATOR = "/"


def normalize(path: str) -> str:
    """Resolve ``.`` and ``..`` components and collapse duplicate slashes.

    The result is always an absolute path; ``..`` at the root is ignored
    (as in POSIX).  Note that relative components are resolved *lexically* —
    ``join("/home/alice", "../bob")`` escapes ``/home/alice``, which is the
    behaviour a directory traversal exploit relies on.
    """
    parts: List[str] = []
    for component in str(path).split(SEPARATOR):
        if component in ("", "."):
            continue
        if component == "..":
            if parts:
                parts.pop()
            continue
        parts.append(component)
    return SEPARATOR + SEPARATOR.join(parts)


def join(base: str, *components: str) -> str:
    """Join and normalize path components.

    An absolute component replaces everything before it, like
    ``os.path.join``.
    """
    result = str(base)
    for component in components:
        component = str(component)
        if component.startswith(SEPARATOR):
            result = component
        else:
            result = result.rstrip(SEPARATOR) + SEPARATOR + component
    return normalize(result)


def split(path: str) -> Tuple[str, str]:
    """Split a normalized path into ``(parent, name)``."""
    path = normalize(path)
    if path == SEPARATOR:
        return SEPARATOR, ""
    parent, _, name = path.rpartition(SEPARATOR)
    return (parent or SEPARATOR), name


def dirname(path: str) -> str:
    return split(path)[0]


def basename(path: str) -> str:
    return split(path)[1]


def parts(path: str) -> List[str]:
    """Component list of a normalized path (empty for the root)."""
    path = normalize(path)
    if path == SEPARATOR:
        return []
    return path.lstrip(SEPARATOR).split(SEPARATOR)


def is_inside(path: str, base: str) -> bool:
    """True if the normalized ``path`` lies inside (or equals) ``base``.

    This is the check vulnerable applications *should* perform on
    user-supplied file names; the file-manager apps in
    :mod:`repro.apps.filemanager` show what happens when they do it wrong.
    """
    path = normalize(path)
    base = normalize(base)
    if base == SEPARATOR:
        return True
    return path == base or path.startswith(base + SEPARATOR)


def extension(path: str) -> str:
    """The file extension (lower-cased, without the dot), or ``''``."""
    name = basename(path)
    if "." not in name:
        return ""
    return name.rsplit(".", 1)[1].lower()
