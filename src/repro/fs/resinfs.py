"""The RESIN-aware filesystem layer.

``ResinFS`` wraps the raw in-memory :class:`~repro.fs.filesystem.FileSystem`
with the three file-related RESIN mechanisms:

* **Persistent policies** (Section 3.4.1): when tainted data is written to a
  file, its byte-range policy map is serialized into the file's extended
  attributes; when the file is read back, the policies are de-serialized and
  re-attached to the data — so assertions keep holding across storage.

* **Default file filters** (Section 3.2.1): every read and write passes
  through the default filter for the ``file`` channel type, which invokes
  ``export_check`` with a ``{'type': 'file', 'path': ...}`` context.

* **Persistent filter objects** (Section 3.2.3): a programmer can attach a
  filter object to a specific file or directory; the runtime invokes it when
  data flows into or out of that file, or when the directory is modified
  (create, delete, rename) — this is how write access control is enforced.

The current request context (e.g. the authenticated user) is pushed into the
persistent filters' contexts via :meth:`ResinFS.set_request_context`, mirroring
how the paper's filters consult application state such as the current user.

Concurrency: every operation holds only the **subtree lock** of the directory
owning its target path (two ordered subtree locks for :meth:`ResinFS.rename`),
so requests working under disjoint directories proceed in parallel — the
filesystem analogue of the SQL engine's per-table locks.  Compound
read-modify-write sequences use :meth:`ResinFS.transaction`, the analogue of
``db.transaction(*tables)``.  Persistent filters are *cloned* per invocation
(each invocation gets its own context), so a filter attached to a shared
ancestor directory never becomes a hidden channel between concurrent requests.
"""

from __future__ import annotations

import contextlib
import copy
from typing import Any, Dict, Iterator, List, Optional

from ..core.context import FilterContext
from ..core.exceptions import FileSystemError, PolicyViolation
from ..core.filter import Filter
from ..core.registry import resolve_registry
from ..core.request_context import current_request
from ..core.serialization import dumps_rangemap, loads_rangemap
from ..tracking.tainted_bytes import TaintedBytes
from ..tracking.tainted_str import TaintedStr
from . import path as fspath
from .filesystem import FileSystem, Stat

#: Extended attribute holding the serialized policy range map of a file.
POLICY_XATTR = "user.resin.policies"

#: Extended attribute holding the persistent filter object of a file/directory.
FILTER_XATTR = "user.resin.filter"


class ResinFile:
    """An open file handle with policy-aware read/write.

    Mirrors the paper's byte-level tracking for file data: reads return
    :class:`~repro.tracking.tainted_bytes.TaintedBytes` whose per-byte
    policies come from the file's xattrs, and writes update those xattrs.

    Every handle operation acquires the owning path's subtree lock, so a
    handle shared between threads stays consistent while handles under
    disjoint directories never serialize against each other.
    """

    def __init__(self, resinfs: "ResinFS", path: str, mode: str = "r"):
        if mode not in ("r", "w", "a"):
            raise FileSystemError(f"unsupported mode {mode!r}")
        self.fs = resinfs
        self.path = fspath.normalize(path)
        self.mode = mode
        self.closed = False
        self._offset = 0
        if mode == "r":
            self._data = self.fs.read_bytes(self.path)
        elif mode == "a" and self.fs.raw.exists(self.path):
            self._data = self.fs.read_bytes(self.path)
            self._offset = len(self._data)
        else:
            self._data = TaintedBytes(b"")

    def read(self, size: Optional[int] = None) -> TaintedBytes:
        self._check_open()
        with self.fs.raw.locked(self.fs.subtree_of(self.path)):
            offset = self._offset
            end = len(self._data) if size is None else offset + size
            chunk = self._data[offset:end]
            self._offset += len(chunk)
            return chunk

    def write(self, data) -> int:
        self._check_open()
        if self.mode == "r":
            raise FileSystemError("file opened read-only")
        if isinstance(data, str):
            data = (
                data if isinstance(data, TaintedStr) else TaintedStr(data)
            ).encode()
        elif not isinstance(data, TaintedBytes):
            data = TaintedBytes(bytes(data))
        with self.fs.raw.locked(self.fs.subtree_of(self.path)):
            self._data = self._data + data
        return len(data)

    def close(self) -> None:
        if self.closed:
            return
        if self.mode in ("w", "a"):
            self.fs.write_bytes(self.path, self._data)
        self.closed = True

    def _check_open(self) -> None:
        if self.closed:
            raise FileSystemError("I/O operation on closed file")

    def __enter__(self) -> "ResinFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class ResinFS:
    """Policy- and filter-aware filesystem operations."""

    def __init__(self, raw: Optional[FileSystem] = None, *, registry=None, env=None):
        self.raw = raw if raw is not None else FileSystem()
        self.registry = resolve_registry(registry, env)
        self.env = env
        self._request_context: Dict[str, Any] = {}
        #: Optional :class:`repro.storage.durability.Durability` sink.  When
        #: set, every namespace op and data/xattr write runs under the
        #: durability gate and logs its physical effect to the WAL.
        self.durability = None
        #: When True (set by a tolerant durability open), unknown policy
        #: classes in stored xattrs load as deny-by-default placeholders
        #: instead of failing the read.
        self.tolerant_policies = False

    # -- durability --------------------------------------------------------------

    def _durable(self):
        """The gate a mutate-and-log pair runs under (no-op when the
        filesystem is not durable).  Acquired *before* the subtree locks —
        the ordering the durability gate's deadlock-freedom argument relies
        on — and reentrant per thread."""
        sink = self.durability
        return sink.mutation() if sink is not None else contextlib.nullcontext()

    def _log(self, record: Dict[str, Any]) -> None:
        sink = self.durability
        if sink is not None:
            sink.log(record)

    def _commit_durable(self) -> None:
        """Group-commit after the subtree locks are released, so the fsync
        never extends lock hold time."""
        sink = self.durability
        if sink is not None:
            sink.commit()

    def _log_file_state(self, path: str, data: TaintedBytes) -> None:
        """Log the file's full post-write image (bytes + serialized policy
        range map): replay restores data and taint in one step."""
        if self.durability is None:
            return
        serialized = (None if data.rangemap.is_empty()
                      else dumps_rangemap(data.rangemap))
        self._log({"op": "fs.write", "path": path,
                   "data": bytes(data).hex(), "policies": serialized})

    # -- locking ---------------------------------------------------------------

    def subtree_of(self, path: str) -> str:
        """The directory whose subtree lock serializes operations on
        ``path`` (see :meth:`FileSystem.subtree_of`)."""
        return self.raw.subtree_of(path)

    def transaction(self, *paths: str):
        """Hold the subtree locks of every path in ``paths`` for the block.

        The filesystem analogue of ``db.transaction(*tables)``: an
        application-level read-modify-write (read a file, compute, write it
        back) names every path it touches up front and holds their subtree
        locks across the whole sequence, so no concurrent request can
        interleave.  A path that is an existing directory locks that
        directory's own subtree (operations on its *entries*); any other
        path locks its parent directory, matching what ``read_bytes`` /
        ``write_bytes`` on that path acquire.

        Locks are acquired in sorted canonical-path order; a nested
        ``transaction`` naming a path that sorts before the ones already
        held raises :class:`~repro.core.exceptions.FileSystemError`
        immediately (see :meth:`FileSystem.locked`).  The directory-or-file
        probe is re-validated after acquisition (``plan_locked``), so the
        block always holds the subtree matching what the tree actually
        contains.
        """
        return self.raw.plan_locked(self._transaction_subtrees, paths)

    def _transaction_subtrees(self, paths) -> tuple:
        return tuple(sorted({self._transaction_subtree(p) for p in paths}))

    def _transaction_subtree(self, path: str) -> str:
        path = fspath.normalize(path)
        if self.raw.isdir(path):
            return path
        return self.raw.subtree_of(path)

    # -- request context -------------------------------------------------------

    def _active_request(self):
        """The RequestContext owning this filesystem, if one is bound."""
        rctx = current_request()
        if (
            rctx is not None
            and rctx.env is not None
            and getattr(rctx.env, "fs", None) is self
        ):
            return rctx
        return None

    @property
    def request_context(self) -> Dict[str, Any]:
        """The context persistent filters see for the *current* request.

        While a :class:`~repro.core.request_context.RequestContext` for this
        filesystem's environment is bound, this resolves to that request's
        ``fs_context`` — each concurrent request sees only its own user.
        Outside any request it falls back to the instance-level context (the
        pre-request-context behaviour).
        """
        rctx = self._active_request()
        if rctx is not None:
            return rctx.fs_context
        return self._request_context

    def set_request_context(self, **kwargs: Any) -> None:
        """Set context (e.g. ``user='alice'``) that persistent filters see.

        The web substrate calls this at the start of each request, so that a
        write-access filter can check the authenticated user the way the
        paper's MoinMoin write-ACL filter does.  Inside a bound
        ``RequestContext`` the update is request-local.
        """
        rctx = self._active_request()
        if rctx is not None:
            rctx.fs_context = dict(kwargs)
        else:
            self._request_context = dict(kwargs)

    def clear_request_context(self) -> None:
        self.set_request_context()

    # -- persistent filters ------------------------------------------------------

    def set_persistent_filter(self, path: str, flt: Filter) -> None:
        """Attach a persistent filter object to a file or directory.

        On a durable filesystem the filter is serialized (class name + data
        fields, like a policy) into the log so it survives restart.  A
        filter that carries code (e.g. a callable predicate) cannot be
        serialized; it still guards this process but must be re-attached at
        application start-up after a restart.
        """
        if not isinstance(flt, Filter):
            raise FileSystemError("persistent filter must be a Filter")
        path = fspath.normalize(path)
        with self._durable():
            with self.raw.locked(self.subtree_of(path)):
                self.raw.set_xattr(path, FILTER_XATTR, flt)
                self._log_filter(path, flt)
        self._commit_durable()

    def _log_filter(self, path: str, flt: Filter) -> None:
        if self.durability is None:
            return
        from ..core.exceptions import SerializationError
        from ..storage.snapshot import serialize_filter
        try:
            record = serialize_filter(flt)
        except SerializationError:
            return
        self._log({"op": "fs.filter", "path": path, "filter": record})

    def get_persistent_filter(self, path: str) -> Optional[Filter]:
        if not self.raw.exists(path):
            return None
        flt = self.raw.get_xattr(path, FILTER_XATTR)
        return flt if isinstance(flt, Filter) else None

    def remove_persistent_filter(self, path: str) -> None:
        path = fspath.normalize(path)
        with self._durable():
            with self.raw.locked(self.subtree_of(path)):
                self.raw.remove_xattr(path, FILTER_XATTR)
                self._log({"op": "fs.unfilter", "path": path})
        self._commit_durable()

    def _guarding_filters(self, path: str) -> Iterator[Filter]:
        """Yield the persistent filters that guard ``path``: the one attached
        to the path itself plus those attached to any ancestor directory.

        Walking up the ancestors means a single filter on a data root guards
        the whole subtree — the shape the file-manager write-access assertion
        needs (Section 3.2.3)."""
        current = fspath.normalize(path)
        seen = set()
        while True:
            flt = self.get_persistent_filter(current)
            if flt is not None and id(flt) not in seen:
                seen.add(id(flt))
                yield flt
            if current == "/":
                return
            current = fspath.dirname(current)

    def _prepare_filter(
        self, flt: Filter, path: str, op: Optional[str] = None
    ) -> Filter:
        """A per-invocation clone of ``flt`` carrying this operation's
        context.

        The stored filter object is shared by every path it guards (and, for
        a filter on an ancestor directory, by every concurrent request
        working anywhere in that subtree).  Mutating its context in place
        would make disjoint-subtree operations race on it now that they no
        longer serialize on a global lock, so each invocation gets a shallow
        copy with its own merged context instead.
        """
        prepared = copy.copy(flt)
        context = FilterContext()
        context.update(flt.context)
        context.env = getattr(flt.context, "env", None) or self.env
        context.update(self.request_context)
        context.setdefault("type", "file")
        context["path"] = path
        if op is not None:
            context["operation"] = op
        prepared.context = context
        return prepared

    def _invoke_persistent_read(self, path: str, data):
        for flt in self._guarding_filters(path):
            data = self._prepare_filter(flt, path).filter_read(data)
        return data

    def _invoke_persistent_write(self, path: str, data):
        for flt in self._guarding_filters(path):
            try:
                data = self._prepare_filter(flt, path).filter_write(data)
            except PolicyViolation as exc:
                self._record_deny("write", path, data, exc)
                raise
        return data

    def _check_directory_mutation(self, op: str, path: str) -> None:
        """Invoke the persistent filters guarding ``path`` (its own and its
        ancestors') for a namespace mutation such as create, delete or
        rename."""
        for flt in self._guarding_filters(path):
            prepared = self._prepare_filter(flt, path, op)
            checker = getattr(prepared, "check_mutation", None)
            try:
                if callable(checker):
                    checker(op, path, prepared.context)
                else:
                    prepared.filter_write(TaintedStr(path))
            except PolicyViolation as exc:
                self._record_deny(op, path, None, exc)
                raise

    def _record_deny(self, op: str, path: str, data, exc) -> None:
        """Audit one xattr-policy (persistent filter) denial.  Called with
        the subtree lock held — recording is only a queue append; the audit
        writer thread does the I/O, never this one."""
        from ..audit.recorder import recorder_for

        recorder = recorder_for(self.env)
        if recorder is not None:
            context = FilterContext(
                type="file", path=path, operation=op, **self.request_context
            )
            recorder.record(
                "fs.deny",
                verdict="deny",
                context=context,
                policies=getattr(exc, "policy", None) and [exc.policy],
                rangemap=getattr(data, "rangemap", None),
                violation=exc,
            )

    # -- default filters -----------------------------------------------------------

    def _default_filter(self, path: str) -> Filter:
        context = FilterContext(type="file", path=path, **self.request_context)
        context.env = self.env
        return self.registry.make_default_filter("file", context)

    # -- policy persistence -----------------------------------------------------------

    def _store_policies(self, path: str, data: TaintedBytes) -> None:
        if data.rangemap.is_empty():
            self.raw.remove_xattr(path, POLICY_XATTR)
            return
        self.raw.set_xattr(path, POLICY_XATTR, dumps_rangemap(data.rangemap))

    def _load_policies(self, path: str, raw_data: bytes) -> TaintedBytes:
        serialized = self.raw.get_xattr(path, POLICY_XATTR)
        rangemap = loads_rangemap(serialized, len(raw_data),
                                  tolerant=self.tolerant_policies)
        if rangemap.length != len(raw_data):
            # The file was modified behind RESIN's back; fall back to
            # spreading the stored policies over the whole file.
            rangemap = rangemap.spread(len(raw_data)).with_length(len(raw_data))
        return TaintedBytes(raw_data, rangemap)

    # -- file data ------------------------------------------------------------------------

    def open(self, path: str, mode: str = "r") -> ResinFile:
        return ResinFile(self, path, mode)

    def read_bytes(self, path: str) -> TaintedBytes:
        path = fspath.normalize(path)
        with self.raw.locked(self.subtree_of(path)):
            raw_data = self.raw.read_raw(path)
            data = self._load_policies(path, raw_data)
            data = self._invoke_persistent_read(path, data)
            data = self._default_filter(path).filter_read(data)
        return data

    def read_text(self, path: str, encoding: str = "utf-8") -> TaintedStr:
        return self.read_bytes(path).decode(encoding)

    def write_bytes(self, path: str, data, append: bool = False) -> None:
        path = fspath.normalize(path)
        if isinstance(data, str):
            data = (
                data if isinstance(data, TaintedStr) else TaintedStr(data)
            ).encode()
        elif not isinstance(data, TaintedBytes):
            data = TaintedBytes(bytes(data))
        with self._durable():
            with self.raw.locked(self.subtree_of(path)):
                if not self.raw.exists(path):
                    self._check_directory_mutation("create", path)
                data = self._default_filter(path).filter_write(data)
                data = self._invoke_persistent_write(path, data)
                if append and self.raw.exists(path):
                    existing = self._load_policies(
                        path, self.raw.read_raw(path))
                    data = existing + data
                self.raw.write_raw(path, bytes(data))
                self._store_policies(path, data)
                self._log_file_state(path, data)
        self._commit_durable()

    def write_text(
        self, path: str, text, append: bool = False, encoding: str = "utf-8"
    ) -> None:
        text = text if isinstance(text, TaintedStr) else TaintedStr(text)
        self.write_bytes(path, text.encode(encoding), append=append)

    # -- policy helpers -------------------------------------------------------------------

    def add_file_policy(self, path: str, policy) -> None:
        """Attach ``policy`` to every byte of an existing file (used by
        installers, e.g. ``make_file_executable`` in Figure 6)."""
        path = fspath.normalize(path)
        with self._durable():
            with self.raw.locked(self.subtree_of(path)):
                data = self.read_bytes(path).with_policy(policy)
                self.raw.write_raw(path, bytes(data))
                self._store_policies(path, data)
                self._log_file_state(path, data)
        self._commit_durable()

    def file_policies(self, path: str):
        """The policy set stored for a file (without reading it through the
        filters) — what a RESIN-aware web server consults before serving a
        static file."""
        path = fspath.normalize(path)
        with self.raw.locked(self.subtree_of(path)):
            raw_data = self.raw.read_raw(path)
            return self._load_policies(path, raw_data).policies()

    # -- namespace operations ---------------------------------------------------------------

    def mkdir(self, path: str, parents: bool = False) -> None:
        path = fspath.normalize(path)
        if path == "/":
            return
        with self._durable():
            with self.raw.plan_locked(self.raw.mkdir_subtrees, path, parents):
                self._check_directory_mutation("mkdir", path)
                self.raw._mkdir_locked(path, parents)
                self._log({"op": "fs.mkdir", "path": path})
        self._commit_durable()

    def unlink(self, path: str) -> None:
        path = fspath.normalize(path)
        with self._durable():
            with self.raw.plan_locked(self.raw.unlink_subtrees, path):
                self._check_directory_mutation("unlink", path)
                self.raw._unlink_locked(path)
                self._log({"op": "fs.unlink", "path": path})
        self._commit_durable()

    def rename(self, src: str, dst: str) -> None:
        src = fspath.normalize(src)
        dst = fspath.normalize(dst)
        with self._durable():
            with self.raw.plan_locked(self.raw.rename_subtrees, src, dst):
                self._check_directory_mutation("rename", src)
                self._check_directory_mutation("rename", dst)
                # Carry the source's persistent filter and policies along.
                self.raw._rename_locked(src, dst)
                self._log({"op": "fs.rename", "src": src, "dst": dst})
        self._commit_durable()

    def listdir(self, path: str) -> List[str]:
        return self.raw.listdir(path)

    def exists(self, path: str) -> bool:
        return self.raw.exists(path)

    def isdir(self, path: str) -> bool:
        return self.raw.isdir(path)

    def isfile(self, path: str) -> bool:
        return self.raw.isfile(path)

    def stat(self, path: str) -> Stat:
        return self.raw.stat(path)

    def walk(self, top: str = "/"):
        return self.raw.walk(top)
