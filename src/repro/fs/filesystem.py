"""In-memory filesystem with extended attributes.

This is the storage substrate under the RESIN file channels: a POSIX-flavoured
tree of directories and regular files, where every inode carries a dict of
extended attributes.  The paper stores two things in xattrs:

* serialized persistent policies for the file's data (Section 3.4.1), and
* programmer-specified persistent filter objects used for write access
  control on files and directories (Section 3.2.3).

This layer knows nothing about policies or filters — it only stores bytes and
xattrs.  The RESIN-aware layer is :class:`repro.fs.resinfs.ResinFS`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from ..core.exceptions import FileSystemError
from . import path as fspath


class Inode:
    """A file or directory node."""

    def __init__(self, kind: str, name: str):
        if kind not in ("file", "dir"):
            raise ValueError(f"unknown inode kind {kind!r}")
        self.kind = kind
        self.name = name
        self.xattrs: Dict[str, Any] = {}
        self.data: bytes = b""
        self.entries: Dict[str, "Inode"] = {}

    @property
    def is_dir(self) -> bool:
        return self.kind == "dir"

    @property
    def is_file(self) -> bool:
        return self.kind == "file"

    def __repr__(self) -> str:
        return f"Inode({self.kind}, {self.name!r})"


class Stat:
    """Minimal stat result."""

    def __init__(self, path: str, inode: Inode):
        self.path = path
        self.kind = inode.kind
        self.size = len(inode.data) if inode.is_file else len(inode.entries)
        self.xattr_names = sorted(inode.xattrs)

    def __repr__(self) -> str:
        return f"Stat({self.path!r}, kind={self.kind}, size={self.size})"


class FileSystem:
    """A purely in-memory filesystem.

    All paths are normalized with :func:`repro.fs.path.normalize`; files hold
    raw ``bytes`` (policy-free — policies are stored in xattrs by the layer
    above).
    """

    def __init__(self):
        self.root = Inode("dir", "/")

    # -- traversal -----------------------------------------------------------

    def _lookup(self, path: str) -> Optional[Inode]:
        node = self.root
        for part in fspath.parts(path):
            if not node.is_dir:
                return None
            node = node.entries.get(part)
            if node is None:
                return None
        return node

    def _require(self, path: str, kind: Optional[str] = None) -> Inode:
        node = self._lookup(path)
        if node is None:
            raise FileSystemError(f"no such file or directory: {path!r}")
        if kind and node.kind != kind:
            raise FileSystemError(f"{path!r} is not a {kind}")
        return node

    def _require_parent(self, path: str) -> Inode:
        parent_path = fspath.dirname(path)
        parent = self._lookup(parent_path)
        if parent is None or not parent.is_dir:
            raise FileSystemError(f"no such directory: {parent_path!r}")
        return parent

    # -- queries ----------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return self._lookup(fspath.normalize(path)) is not None

    def isdir(self, path: str) -> bool:
        node = self._lookup(fspath.normalize(path))
        return node is not None and node.is_dir

    def isfile(self, path: str) -> bool:
        node = self._lookup(fspath.normalize(path))
        return node is not None and node.is_file

    def listdir(self, path: str) -> List[str]:
        node = self._require(fspath.normalize(path), "dir")
        return sorted(node.entries)

    def stat(self, path: str) -> Stat:
        path = fspath.normalize(path)
        return Stat(path, self._require(path))

    def walk(self, top: str = "/") -> Iterator[str]:
        """Yield every path under ``top`` (depth-first, files and dirs)."""
        top = fspath.normalize(top)
        node = self._require(top)
        stack = [(top, node)]
        while stack:
            current_path, current = stack.pop()
            yield current_path
            if current.is_dir:
                for name in sorted(current.entries, reverse=True):
                    stack.append((fspath.join(current_path, name),
                                  current.entries[name]))

    # -- directory operations -----------------------------------------------------

    def mkdir(self, path: str, parents: bool = False) -> None:
        path = fspath.normalize(path)
        if path == "/":
            return
        parent_path, name = fspath.split(path)
        parent = self._lookup(parent_path)
        if parent is None:
            if not parents:
                raise FileSystemError(f"no such directory: {parent_path!r}")
            self.mkdir(parent_path, parents=True)
            parent = self._require(parent_path, "dir")
        if not parent.is_dir:
            raise FileSystemError(f"{parent_path!r} is not a directory")
        existing = parent.entries.get(name)
        if existing is not None:
            if existing.is_dir:
                return
            raise FileSystemError(f"{path!r} exists and is not a directory")
        parent.entries[name] = Inode("dir", name)

    def unlink(self, path: str) -> None:
        path = fspath.normalize(path)
        parent = self._require_parent(path)
        name = fspath.basename(path)
        node = parent.entries.get(name)
        if node is None:
            raise FileSystemError(f"no such file or directory: {path!r}")
        if node.is_dir and node.entries:
            raise FileSystemError(f"directory not empty: {path!r}")
        del parent.entries[name]

    def rename(self, src: str, dst: str) -> None:
        src = fspath.normalize(src)
        dst = fspath.normalize(dst)
        node = self._require(src)
        dst_parent = self._require_parent(dst)
        src_parent = self._require_parent(src)
        del src_parent.entries[fspath.basename(src)]
        node.name = fspath.basename(dst)
        dst_parent.entries[node.name] = node

    # -- file data -----------------------------------------------------------------

    def create(self, path: str) -> None:
        """Create an empty file (no error if it already exists)."""
        path = fspath.normalize(path)
        parent = self._require_parent(path)
        name = fspath.basename(path)
        node = parent.entries.get(name)
        if node is None:
            parent.entries[name] = Inode("file", name)
        elif not node.is_file:
            raise FileSystemError(f"{path!r} is a directory")

    def read_raw(self, path: str) -> bytes:
        node = self._require(fspath.normalize(path), "file")
        return node.data

    def write_raw(self, path: str, data: bytes, append: bool = False) -> None:
        path = fspath.normalize(path)
        self.create(path)
        node = self._require(path, "file")
        data = bytes(data)
        node.data = node.data + data if append else data

    # -- extended attributes ---------------------------------------------------------

    def get_xattr(self, path: str, name: str, default: Any = None) -> Any:
        node = self._require(fspath.normalize(path))
        return node.xattrs.get(name, default)

    def set_xattr(self, path: str, name: str, value: Any) -> None:
        node = self._require(fspath.normalize(path))
        node.xattrs[name] = value

    def remove_xattr(self, path: str, name: str) -> None:
        node = self._require(fspath.normalize(path))
        node.xattrs.pop(name, None)

    def list_xattrs(self, path: str) -> List[str]:
        node = self._require(fspath.normalize(path))
        return sorted(node.xattrs)
