"""In-memory filesystem with extended attributes and per-subtree locking.

This is the storage substrate under the RESIN file channels: a POSIX-flavoured
tree of directories and regular files, where every inode carries a dict of
extended attributes.  The paper stores two things in xattrs:

* serialized persistent policies for the file's data (Section 3.4.1), and
* programmer-specified persistent filter objects used for write access
  control on files and directories (Section 3.2.3).

This layer knows nothing about policies or filters — it only stores bytes and
xattrs.  The RESIN-aware layer is :class:`repro.fs.resinfs.ResinFS`.

Locking mirrors the per-table scheme of :class:`repro.sql.engine.Engine`:
every *directory* path owns a reentrant **subtree lock** (:meth:`FileSystem
.subtree_lock`) serializing the logical operations that target its entries,
and a single short-lived **dentry lock** guards the structural mutation of
the entry dicts themselves (plus the lock registry).  The dentry lock is
innermost: taken last, held only across the dict mutation, never while
waiting for a subtree lock — the exact role the engine's catalog lock plays
for CREATE/DROP.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.exceptions import FileSystemError
from ..core.locking import OrderedLockRegistry
from . import path as fspath


class Inode:
    """A file or directory node."""

    def __init__(self, kind: str, name: str):
        if kind not in ("file", "dir"):
            raise ValueError(f"unknown inode kind {kind!r}")
        self.kind = kind
        self.name = name
        self.xattrs: Dict[str, Any] = {}
        self.data: bytes = b""
        self.entries: Dict[str, "Inode"] = {}

    @property
    def is_dir(self) -> bool:
        return self.kind == "dir"

    @property
    def is_file(self) -> bool:
        return self.kind == "file"

    def __repr__(self) -> str:
        return f"Inode({self.kind}, {self.name!r})"


class Stat:
    """Minimal stat result."""

    def __init__(self, path: str, inode: Inode):
        self.path = path
        self.kind = inode.kind
        self.size = len(inode.data) if inode.is_file else len(inode.entries)
        self.xattr_names = sorted(inode.xattrs)

    def __repr__(self) -> str:
        return f"Stat({self.path!r}, kind={self.kind}, size={self.size})"


class FileSystem:
    """A purely in-memory filesystem.

    All paths are normalized with :func:`repro.fs.path.normalize`; files hold
    raw ``bytes`` (policy-free — policies are stored in xattrs by the layer
    above).

    The filesystem is shared by every request of an environment.  Locking is
    **per subtree**: each directory path owns a reentrant lock
    (:meth:`subtree_lock`), so operations under independent directories
    execute concurrently and only operations targeting entries of the *same*
    directory serialize.  A short-lived :attr:`dentry_lock` guards the entry
    dicts themselves (create / unlink / rename and lock creation).

    Lock-ordering rule: multiple subtree locks are always acquired in sorted
    canonical-path order (:meth:`locked` does this for you; an ancestor
    always sorts before its descendants), and the dentry lock is *innermost*
    — taken last, held only across the entry-dict mutation, and never while
    waiting for a subtree lock.  Following the rule everywhere makes deadlock
    impossible; :class:`repro.fs.resinfs.ResinFS` uses :meth:`locked` to hold
    a path's subtree across the multi-step read-modify-write sequences of
    policy persistence.
    """

    def __init__(self):
        self.root = Inode("dir", "/")
        #: The shared ordered-lock machinery (same as the SQL engine's
        #: per-table locks): one reentrant lock per directory path,
        #: sorted-order multi-acquisition, fail-fast ordering violations.
        self._locking = OrderedLockRegistry(
            noun="subtree",
            error=FileSystemError,
            hint="name every path the compound operation touches in its "
            "outermost locked()/transaction() call",
        )
        #: Guards the :class:`Inode` entry dicts (the namespace, not the
        #: data) and the subtree-lock registry.  Short-lived and innermost:
        #: held only while mutating an entry dict or materializing a
        #: subtree lock, never across a whole logical operation.
        self.dentry_lock = self._locking.registry_lock

    # -- locking ---------------------------------------------------------------

    @staticmethod
    def subtree_of(path: str) -> str:
        """The directory whose subtree lock serializes operations on
        ``path``: the parent directory for files and nested directories,
        the root for entries directly under ``/``."""
        return fspath.dirname(fspath.normalize(path))

    def subtree_lock(self, path: str):
        """The lock serializing operations under directory ``path`` (created
        on demand, stable across unlink/re-create of the same path)."""
        return self._locking.lock(fspath.normalize(path))

    @contextlib.contextmanager
    def locked(self, *subtrees: str) -> Iterator["FileSystem"]:
        """Hold the locks of every directory in ``subtrees`` (sorted
        canonical-path order).

        This is the filesystem's multi-subtree critical section: acquiring
        in deterministic order means two callers locking overlapping
        directory sets can never deadlock.  Reentrant per thread, so
        operations executed inside the block re-acquire their directory's
        lock harmlessly.

        Nested ``locked`` calls may only *add* directories that sort after
        every directory already held (re-acquiring held ones is always fine)
        — a nested acquisition that sorts earlier would break the global
        ordering and could deadlock against another thread, so it raises
        :class:`~repro.core.exceptions.FileSystemError` immediately instead.
        Name every path a compound operation touches in its outermost
        ``locked``/``transaction`` call.
        """
        names = (fspath.normalize(name) for name in subtrees)
        with self._locking.locked(*names):
            yield self

    @contextlib.contextmanager
    def plan_locked(self, plan, *args) -> Iterator["FileSystem"]:
        """Acquire the subtree set ``plan(*args)`` computes, re-planning
        until the set is stable across the acquisition.

        The ``*_subtrees`` planners probe the tree lock-free, so a directory
        may (dis)appear between computing the plan and acquiring its locks —
        in which case the plan no longer covers the paths the operation must
        exclude.  This helper loops: plan, acquire, re-plan; on mismatch it
        releases and starts over, so the body always runs under the lock set
        that matches the tree it actually sees.  Every namespace mutation
        (``mkdir``/``unlink``/``rename`` here and their policy-checked
        twins on :class:`~repro.fs.resinfs.ResinFS`) goes through this.
        """
        while True:
            subtrees = plan(*args)
            with self.locked(*subtrees):
                if plan(*args) != subtrees:
                    continue
                yield self
                return

    def mkdir_subtrees(self, path: str, parents: bool = False) -> Tuple[str, ...]:
        """The subtree set a ``mkdir`` of ``path`` must hold: the parent of
        every directory the call may create.  Computed *before* locking (the
        probe is racy — ``plan_locked`` re-plans until it is stable)."""
        path = fspath.normalize(path)
        subtrees = {self.subtree_of(path)}
        if parents:
            probe = fspath.dirname(path)
            while probe != "/" and self._lookup(probe) is None:
                subtrees.add(self.subtree_of(probe))
                probe = fspath.dirname(probe)
        return tuple(sorted(subtrees))

    def unlink_subtrees(self, path: str) -> Tuple[str, ...]:
        """The subtree set an ``unlink`` of ``path`` must hold: the parent
        directory plus, for a directory victim, the directory itself — so
        removing a directory mutually excludes the operations working *under*
        it (a child path always sorts after its parent, so the extra lock is
        ordering-safe).  Callers re-validate the plan after acquiring
        (:meth:`unlink` does) because the probe itself is lock-free."""
        path = fspath.normalize(path)
        subtrees = {self.subtree_of(path)}
        if self.isdir(path):
            subtrees.add(path)
        return tuple(sorted(subtrees))

    def rename_subtrees(self, src: str, dst: str) -> Tuple[str, ...]:
        """The subtree set a ``rename`` must hold: both parents, plus — for
        a directory being moved (or overwritten) — every directory *in* its
        subtree, so no operation anywhere under the old name can interleave
        with the move (unlike :meth:`unlink_subtrees`, the victim need not
        be empty).  Once the set is acquired, creating a new subdirectory
        under the victim needs one of the held locks, so ``plan_locked``'s
        revalidation is decisive."""
        src = fspath.normalize(src)
        dst = fspath.normalize(dst)
        subtrees = {self.subtree_of(src), self.subtree_of(dst)}
        for probe in (src, dst):
            if self.isdir(probe):
                subtrees.update(p for p in self.walk(probe) if self.isdir(p))
        return tuple(sorted(subtrees))

    # -- traversal -----------------------------------------------------------

    def _lookup(self, path: str) -> Optional[Inode]:
        # Lock-free namespace *read*: dict lookups are atomic under the GIL
        # and every mutation of an entry dict happens under the dentry lock.
        # Taking the dentry lock here would invert the dentry-innermost
        # ordering for callers that already hold a subtree lock.
        node = self.root
        for part in fspath.parts(path):
            if not node.is_dir:
                return None
            node = node.entries.get(part)
            if node is None:
                return None
        return node

    def _require(self, path: str, kind: Optional[str] = None) -> Inode:
        node = self._lookup(path)
        if node is None:
            raise FileSystemError(f"no such file or directory: {path!r}")
        if kind and node.kind != kind:
            raise FileSystemError(f"{path!r} is not a {kind}")
        return node

    def _require_parent(self, path: str) -> Inode:
        parent_path = fspath.dirname(path)
        parent = self._lookup(parent_path)
        if parent is None or not parent.is_dir:
            raise FileSystemError(f"no such directory: {parent_path!r}")
        return parent

    # -- queries ----------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return self._lookup(fspath.normalize(path)) is not None

    def isdir(self, path: str) -> bool:
        node = self._lookup(fspath.normalize(path))
        return node is not None and node.is_dir

    def isfile(self, path: str) -> bool:
        node = self._lookup(fspath.normalize(path))
        return node is not None and node.is_file

    def listdir(self, path: str) -> List[str]:
        node = self._require(fspath.normalize(path), "dir")
        # Snapshot under the dentry lock: entry dicts mutate concurrently
        # under other subtrees' locks, which this caller need not hold.
        with self.dentry_lock:
            return sorted(node.entries)

    def stat(self, path: str) -> Stat:
        path = fspath.normalize(path)
        return Stat(path, self._require(path))

    def walk(self, top: str = "/") -> Iterator[str]:
        """Yield every path under ``top`` (depth-first, files and dirs).

        Each directory's entry list is snapshotted under the dentry lock
        (never held across a yield), so the walk is safe under concurrent
        namespace churn; entries created or removed mid-walk may or may not
        appear, like ``readdir`` on a live filesystem.
        """
        top = fspath.normalize(top)
        node = self._require(top)
        stack = [(top, node)]
        while stack:
            current_path, current = stack.pop()
            yield current_path
            if current.is_dir:
                with self.dentry_lock:
                    children = sorted(current.entries.items(), reverse=True)
                for name, child in children:
                    stack.append((fspath.join(current_path, name), child))

    # -- directory operations -----------------------------------------------------

    def mkdir(self, path: str, parents: bool = False) -> None:
        path = fspath.normalize(path)
        if path == "/":
            return
        with self.plan_locked(self.mkdir_subtrees, path, parents):
            self._mkdir_locked(path, parents)

    def _mkdir_locked(self, path: str, parents: bool) -> None:
        parent_path, name = fspath.split(path)
        parent = self._lookup(parent_path)
        if parent is None:
            if not parents:
                raise FileSystemError(f"no such directory: {parent_path!r}")
            self._mkdir_locked(parent_path, True)
            parent = self._require(parent_path, "dir")
        if not parent.is_dir:
            raise FileSystemError(f"{parent_path!r} is not a directory")
        with self.dentry_lock:
            existing = parent.entries.get(name)
            if existing is not None:
                if existing.is_dir:
                    return
                raise FileSystemError(f"{path!r} exists and is not a directory")
            parent.entries[name] = Inode("dir", name)

    def unlink(self, path: str) -> None:
        path = fspath.normalize(path)
        with self.plan_locked(self.unlink_subtrees, path):
            self._unlink_locked(path)

    def _unlink_locked(self, path: str) -> None:
        parent = self._require_parent(path)
        name = fspath.basename(path)
        with self.dentry_lock:
            node = parent.entries.get(name)
            if node is None:
                raise FileSystemError(f"no such file or directory: {path!r}")
            if node.is_dir and node.entries:
                raise FileSystemError(f"directory not empty: {path!r}")
            del parent.entries[name]

    def rename(self, src: str, dst: str) -> None:
        src = fspath.normalize(src)
        dst = fspath.normalize(dst)
        with self.plan_locked(self.rename_subtrees, src, dst):
            self._rename_locked(src, dst)

    def _rename_locked(self, src: str, dst: str) -> None:
        node = self._require(src)
        dst_parent = self._require_parent(dst)
        src_parent = self._require_parent(src)
        with self.dentry_lock:
            del src_parent.entries[fspath.basename(src)]
            node.name = fspath.basename(dst)
            dst_parent.entries[node.name] = node

    # -- file data -----------------------------------------------------------------

    def create(self, path: str) -> None:
        """Create an empty file (no error if it already exists)."""
        path = fspath.normalize(path)
        with self.locked(self.subtree_of(path)):
            parent = self._require_parent(path)
            name = fspath.basename(path)
            with self.dentry_lock:
                node = parent.entries.get(name)
                if node is None:
                    parent.entries[name] = Inode("file", name)
                elif not node.is_file:
                    raise FileSystemError(f"{path!r} is a directory")

    def read_raw(self, path: str) -> bytes:
        path = fspath.normalize(path)
        with self.locked(self.subtree_of(path)):
            node = self._require(path, "file")
            return node.data

    def write_raw(self, path: str, data: bytes, append: bool = False) -> None:
        path = fspath.normalize(path)
        with self.locked(self.subtree_of(path)):
            self.create(path)
            node = self._require(path, "file")
            data = bytes(data)
            node.data = node.data + data if append else data

    # -- extended attributes ---------------------------------------------------------

    def get_xattr(self, path: str, name: str, default: Any = None) -> Any:
        node = self._require(fspath.normalize(path))
        return node.xattrs.get(name, default)

    def set_xattr(self, path: str, name: str, value: Any) -> None:
        path = fspath.normalize(path)
        with self.locked(self.subtree_of(path)):
            node = self._require(path)
            node.xattrs[name] = value

    def remove_xattr(self, path: str, name: str) -> None:
        path = fspath.normalize(path)
        with self.locked(self.subtree_of(path)):
            node = self._require(path)
            node.xattrs.pop(name, None)

    def list_xattrs(self, path: str) -> List[str]:
        node = self._require(fspath.normalize(path))
        return sorted(node.xattrs)
