"""The opt-in durability service.

``Durability`` owns one WAL + snapshot directory on behalf of one
:class:`~repro.environment.Environment`, and is the single point the SQL
engine and ResinFS talk to:

* every mutate-and-log pair runs under :meth:`mutation` (the shared side of
  a :class:`~repro.core.locking.SharedExclusiveGate`), keeping mutations
  atomic with respect to checkpoints;
* :meth:`log` appends the record, :meth:`commit` group-commits — one fsync
  absorbs every record buffered across the concurrent requests that reached
  their commit point together;
* :meth:`checkpoint` (and the size-triggered opportunistic flavour inside
  :meth:`commit`) takes the exclusive side, drains the log, rotates to a
  fresh segment, writes a snapshot covering everything before it, and
  retires the WAL segments + snapshots the new snapshot supersedes.

Lifecycle::

    env = Environment()
    store = Durability.open(env, "/var/lib/app")   # recover + attach
    ...                                            # mutations now logged
    store.checkpoint()                             # optional, compacts
    store.close()                                  # flush and release

:meth:`open` is what ``Resin.open(path)`` wraps: load the newest valid
snapshot, replay the WAL tail (tolerating a torn final record), then attach
so subsequent mutations are logged.  Exactly one ``Durability`` may be open
on a directory at a time — it appends to the live segment.

Deadlock-freedom argument (the properties the gate relies on): mutators
acquire the gate *before* any table/subtree lock, the exclusive side takes
**no** substrate locks (the snapshot builder reads the table dicts and the
inode tree directly, which is safe precisely because every mutation is
excluded by the gate), and a queued exclusive waiter never blocks new
shared entries.  The opportunistic checkpoint uses the non-blocking
``try_exclusive`` and simply skips when the store is busy.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from ..core.locking import SharedExclusiveGate
from .recovery import replay
from .snapshot import (
    build_snapshot,
    load_latest_snapshot,
    restore_snapshot,
    retire_snapshots_except,
    write_snapshot,
)
from .wal import WriteAheadLog

__all__ = ["Durability", "SERVICE_NAME"]

#: The name ``Durability`` registers itself under on ``env.services``.
SERVICE_NAME = "storage.durability"

#: Default auto-checkpoint threshold: once the live WAL segment exceeds this
#: many bytes, the next commit opportunistically compacts.
DEFAULT_CHECKPOINT_BYTES = 4 * 1024 * 1024


class Durability:
    """Write-ahead logging + snapshot compaction for one environment."""

    def __init__(
        self,
        directory: str,
        *,
        sync: str = "fsync",
        group_commit: bool = True,
        checkpoint_bytes: Optional[int] = DEFAULT_CHECKPOINT_BYTES,
        tolerant: bool = False,
    ):
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.tolerant = tolerant
        self.checkpoint_bytes = checkpoint_bytes
        self.gate = SharedExclusiveGate()
        self.wal = WriteAheadLog(directory, sync=sync, group_commit=group_commit)
        self.env = None
        self.engine = None
        self.fs = None
        #: Checkpoints taken (explicit + opportunistic) — observability.
        self.checkpoints = 0

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def open(
        cls,
        env,
        directory: str,
        *,
        sync: str = "fsync",
        group_commit: bool = True,
        checkpoint_bytes: Optional[int] = DEFAULT_CHECKPOINT_BYTES,
        tolerant: bool = False,
    ) -> "Durability":
        """Open (or create) the store at ``directory`` for ``env``:
        recover its state, then attach so new mutations are logged."""
        store = cls(
            directory,
            sync=sync,
            group_commit=group_commit,
            checkpoint_bytes=checkpoint_bytes,
            tolerant=tolerant,
        )
        store.recover(env)
        store.attach(env)
        return store

    def recover(self, env) -> int:
        """Rebuild ``env``'s tables and filesystem from snapshot + WAL tail;
        returns the number of log records replayed.

        Must run before :meth:`attach` (replay applies physical effects
        directly and must not re-log), on an environment nothing else is
        using yet.
        """
        engine = env.db.engine
        raw = env.fs.raw
        start_segment = 0
        doc = load_latest_snapshot(self.directory)
        if doc is not None:
            restore_snapshot(doc, engine, raw, tolerant=self.tolerant)
            start_segment = doc["wal_start"]
        return replay(
            self.wal.replay(start_segment), engine, raw, tolerant=self.tolerant
        )

    def attach(self, env) -> None:
        """Start logging ``env``'s mutations through this store."""
        self.env = env
        self.engine = env.db.engine
        self.fs = env.fs
        self.engine.durability = self
        self.fs.durability = self
        if self.tolerant:
            self.fs.tolerant_policies = True
            env.db.tolerant_policies = True
        env.services.register(SERVICE_NAME, self)

    def close(self) -> None:
        """Flush everything and release the store (no final checkpoint —
        recovery replays the tail on the next open).

        Takes the exclusive gate so every in-flight mutate-and-log pair
        drains first, and detaches the engine/fs durability pointers
        *before* closing the WAL: a mutation racing with shutdown either
        fully logs (and the close's final flush makes it durable) or sees
        no sink at all — it can never apply its in-memory effect and then
        blow up on ``append() on a closed WAL`` with the record unlogged.
        """
        with self.gate.exclusive():
            if self.engine is not None and self.engine.durability is self:
                self.engine.durability = None
            if self.fs is not None and self.fs.durability is self:
                self.fs.durability = None
            if self.env is not None and self.env.services.get(SERVICE_NAME) is self:
                self.env.services.unregister(SERVICE_NAME)
            self.wal.close()

    def __enter__(self) -> "Durability":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- the mutation protocol ------------------------------------------------

    def mutation(self):
        """The context a mutate-and-log pair must run under (reentrant)."""
        return self.gate.shared()

    def log(self, record: Dict[str, Any]) -> int:
        """Append one record (buffered; durable after :meth:`commit`)."""
        return self.wal.append(record)

    def commit(self) -> None:
        """Make everything appended so far durable, then opportunistically
        checkpoint if the live segment has grown past the threshold.

        Call *after* leaving the :meth:`mutation` scope.  Inside a still-open
        enclosing mutation (``gate.shared_depth() > 0``) this is a no-op —
        the outermost layer commits once, which is what lets one fsync
        absorb a whole compound operation.
        """
        if self.gate.shared_depth():
            return
        self.wal.commit()
        if (
            self.checkpoint_bytes
            and self.wal.size >= self.checkpoint_bytes
        ):
            handle = self.gate.try_exclusive()
            if handle is not None:
                with handle:
                    self._checkpoint_exclusive()

    # -- checkpoint / compaction ----------------------------------------------

    def checkpoint(self) -> int:
        """Write a snapshot of the current state and retire the log it
        covers; returns the new ``wal_start`` segment id.  Blocks until
        in-flight mutations drain."""
        with self.gate.exclusive():
            return self._checkpoint_exclusive()

    def _checkpoint_exclusive(self) -> int:
        # Order matters: drain the log, rotate so the snapshot's covered
        # prefix is exactly the sealed segments, write the snapshot durably,
        # and only then retire what it supersedes.  A crash between any two
        # steps is safe: before the snapshot lands, recovery uses the
        # previous snapshot and the still-present segments; after it lands,
        # recovery starts at the new wal_start and the stale segments are
        # merely unreclaimed space until the next checkpoint.
        self.wal.commit()
        wal_start = self.wal.rotate()
        doc = build_snapshot(self.engine, self.fs.raw, wal_start)
        write_snapshot(self.directory, doc, sync=self.wal.sync == "fsync")
        self.wal.retire_before(wal_start)
        retire_snapshots_except(self.directory, wal_start)
        self.checkpoints += 1
        return wal_start
