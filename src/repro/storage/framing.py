"""Shared record framing for append-only logs.

Both the write-ahead log (:mod:`repro.storage.wal`) and the audit ledger
(:mod:`repro.audit.ledger`) store streams of records in segment files with
the same wire format — each record length-prefixed and checksummed::

    +----------------+----------------+----------------------+
    | length (4B BE) | crc32 (4B BE)  | payload (JSON, UTF-8) |
    +----------------+----------------+----------------------+

A reader accepts a record only if the full frame is present *and* the CRC
matches; anything else is a **torn tail** — the crash left a partial final
record — and decoding stops exactly there, yielding the committed prefix.
Openers truncate the torn tail before appending, so a log never contains
garbage between valid records.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict, List, Optional, Tuple

from ..core.exceptions import SerializationError

__all__ = [
    "HEADER",
    "MAX_RECORD_BYTES",
    "SEGMENT_PREFIX",
    "decode_records",
    "decode_value",
    "encode_record",
    "encode_value",
    "parse_segment_id",
    "segment_name",
]

HEADER = struct.Struct(">II")

#: Segment files are ``seg-<id>.<suffix>`` inside a log directory; the
#: suffix distinguishes the owning subsystem (``.wal`` for the write-ahead
#: log, ``.audit`` for the provenance ledger).
SEGMENT_PREFIX = "seg-"

#: Hard upper bound on one record's payload.  Enforced symmetrically: the
#: *writer* refuses to encode a larger record (:func:`encode_record` raises,
#: so an oversized record fails loudly at log time instead of being
#: acknowledged durable), and the *reader* treats a larger length prefix as
#: corruption.  Snapshot frames are exempt (``max_bytes=None``): they are
#: single trusted frames whose length is already bounded by the file size.
MAX_RECORD_BYTES = 64 * 1024 * 1024

#: Sentinel meaning "use the module's MAX_RECORD_BYTES at call time".
_DEFAULT_LIMIT = object()


def encode_value(value: Any) -> Any:
    """Encode one stored cell/file value to a JSON-able form.

    Table cells and file contents are plain Python data by the time they
    reach the log (policies travel separately, already serialized by
    :mod:`repro.core.serialization` into policy columns and xattrs), so the
    only non-JSON type to handle is ``bytes``.
    """
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise SerializationError(f"cannot log value of type {type(value).__name__}")


def decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "__bytes__" in value:
        return bytes.fromhex(value["__bytes__"])
    return value


def encode_record(record: Dict[str, Any], *, max_bytes=_DEFAULT_LIMIT) -> bytes:
    """One framed record: header (length + crc32) and JSON payload.

    Raises :class:`~repro.core.exceptions.SerializationError` when the
    payload exceeds ``max_bytes`` (default: :data:`MAX_RECORD_BYTES`): a
    frame over the limit would be *written* fine but rejected as a corrupt
    length prefix on replay, silently dropping it and every later record —
    so the writer must fail loudly instead.  ``max_bytes=None`` disables the
    check (snapshot frames, which get no reader-side limit either).
    """
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    limit = MAX_RECORD_BYTES if max_bytes is _DEFAULT_LIMIT else max_bytes
    if limit is not None and len(payload) > limit:
        raise SerializationError(
            f"record payload is {len(payload)} bytes, over the {limit}-byte "
            "frame limit; refusing to write a record replay would reject as "
            "corrupt"
        )
    return HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_records(
    data: bytes, *, max_record_bytes=_DEFAULT_LIMIT
) -> Tuple[List[Dict[str, Any]], int]:
    """Decode every complete, valid record from ``data``.

    Returns ``(records, valid_length)`` where ``valid_length`` is the byte
    offset of the first invalid/torn frame (== ``len(data)`` when the whole
    buffer is clean).  Replay uses the records; segment openers use the
    offset to truncate the torn tail.  ``max_record_bytes`` must match what
    the writer enforced (``None`` for snapshot frames).
    """
    limit = (
        MAX_RECORD_BYTES if max_record_bytes is _DEFAULT_LIMIT else max_record_bytes
    )
    records: List[Dict[str, Any]] = []
    offset = 0
    total = len(data)
    while offset + HEADER.size <= total:
        length, crc = HEADER.unpack_from(data, offset)
        start = offset + HEADER.size
        if (limit is not None and length > limit) or start + length > total:
            break
        payload = data[start : start + length]
        if zlib.crc32(payload) != crc:
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = start + length
    return records, offset


def segment_name(segment_id: int, suffix: str) -> str:
    return f"{SEGMENT_PREFIX}{segment_id:08d}{suffix}"


def parse_segment_id(name: str, suffix: str) -> Optional[int]:
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(suffix)):
        return None
    middle = name[len(SEGMENT_PREFIX) : -len(suffix)]
    try:
        return int(middle)
    except ValueError:
        return None
