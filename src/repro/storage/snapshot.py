"""Snapshot writer/loader for the durable storage engine.

A snapshot is a full, point-in-time serialization of one environment's SQL
tables and filesystem tree, written while the durability gate is held
exclusively (no mutation in flight).  It records ``wal_start`` — the id of
the WAL segment opened at the same instant — so recovery knows exactly which
log suffix still applies: *snapshot state + replay of segments >=
``wal_start``* reproduces the live state.

Policies ride along intact.  Table cells are plain values (the policy
columns the SQL channel maintains are ordinary ``TEXT`` cells and serialize
with the rest of the row), file policy range-maps are already serialized
strings in the ``user.resin.policies`` xattr, and persistent filter objects
are serialized class-name + data fields via the same codec the policies use
(:func:`repro.core.serialization.encode_field`) — never code.  That is what
makes taint survive a restart (Section 3.4.1 of the paper).

On disk a snapshot is a single WAL-style frame (length + CRC32 + JSON) in a
file named ``snap-<wal_start>.snap``, written to a temp file and renamed
into place — a torn snapshot write leaves only an invalid temp file, and
:func:`load_latest_snapshot` simply falls back to the previous snapshot.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Mapping, Optional

from ..core.context import as_context
from ..core.exceptions import PolicyViolation, RecoveryError, SerializationError
from ..core.filter import Filter
from ..core.serialization import decode_field, encode_field, qualified_name
from ..fs import path as fspath
from ..fs.filesystem import FileSystem, Inode
from ..sql import nodes
from ..sql.engine import Engine, Table
from ..sql.indexes import SecondaryIndex
from .wal import decode_records, decode_value, encode_record, encode_value

__all__ = [
    "build_snapshot",
    "restore_snapshot",
    "write_snapshot",
    "load_latest_snapshot",
    "snapshot_ids",
    "retire_snapshots_except",
    "serialize_filter",
    "deserialize_filter",
    "UnknownFilter",
    "SNAPSHOT_PREFIX",
]

SNAPSHOT_PREFIX = "snap-"
_SNAPSHOT_SUFFIX = ".snap"

SNAPSHOT_VERSION = 1


# -- persistent filter codec --------------------------------------------------


class UnknownFilter(Filter):
    """Placeholder for a stored filter whose class cannot be resolved.

    The filter counterpart of
    :class:`~repro.core.serialization.UnknownPolicy`: tolerant recovery must
    not drop an access-control boundary just because this deployment does
    not ship its class, so the placeholder stays attached and denies every
    write and namespace mutation (fail closed); reads pass through, matching
    :class:`~repro.security.assertions.WriteAccessFilter`'s shape.
    """

    def __init__(self, class_name: str, record: Optional[dict] = None):
        super().__init__()
        self.class_name = str(class_name)
        self.record = record if record is not None else {}

    def _deny(self, operation: str, path: str, context) -> None:
        raise PolicyViolation(
            f"path {path!r} is guarded by unknown filter class "
            f"{self.class_name!r}; denying {operation} (deny-by-default "
            "for unresolvable assertions)",
            context=context,
        )

    def filter_write(self, data: Any, offset: int = 0) -> Any:
        self._deny("write", self.context.get("path", ""), self.context)

    def check_mutation(self, operation: str, path: str, context) -> None:
        self._deny(operation, path, context)

    def __repr__(self) -> str:
        return f"UnknownFilter({self.class_name!r})"


def serialize_filter(flt: Filter) -> Dict[str, Any]:
    """Serialize a persistent filter object (class name + data fields).

    Follows the policy protocol exactly: the filter must expose
    ``serializable_fields()`` and contain only data.  Filters that carry
    code (callable predicates) raise
    :class:`~repro.core.exceptions.SerializationError` — the durability
    layer skips those with the caveat that they must be re-attached at
    application start-up.
    """
    if isinstance(flt, UnknownFilter):
        return {
            "class": flt.class_name,
            "fields": dict(flt.record.get("fields", {})),
        }
    fields = getattr(flt, "serializable_fields", None)
    if not callable(fields):
        raise SerializationError(
            f"filter {type(flt).__name__} does not support persistence "
            "(no serializable_fields)"
        )
    return {
        "class": qualified_name(type(flt)),
        "fields": {key: encode_field(value) for key, value in fields().items()},
    }


def _find_filter_class(name: str) -> type:
    def scan(base):
        for sub in base.__subclasses__():
            yield sub
            yield from scan(sub)

    for cls in scan(Filter):
        if qualified_name(cls) == name or cls.__qualname__ == name:
            return cls
    raise SerializationError(f"unknown filter class {name!r}")


def deserialize_filter(record: Dict[str, Any], *, tolerant: bool = False) -> Filter:
    """Re-create a persistent filter from its serialized form.

    Mirrors :func:`repro.core.serialization.deserialize_policy`: the object
    is created without ``__init__`` and exactly the stored fields are
    restored.  With ``tolerant=True`` an unknown class yields a fail-closed
    :class:`UnknownFilter` instead of raising.
    """
    try:
        name = record["class"]
    except KeyError as exc:
        raise SerializationError(f"malformed filter record: {record!r}") from exc
    try:
        cls = _find_filter_class(name)
    except SerializationError:
        if not tolerant:
            raise
        return UnknownFilter(
            name, {"class": name, "fields": dict(record.get("fields", {}))}
        )
    flt = cls.__new__(cls)
    flt.context = as_context(None)
    for key, value in record.get("fields", {}).items():
        setattr(flt, key, decode_field(value, tolerant=tolerant))
    return flt


# -- snapshot document --------------------------------------------------------


def _snapshot_table(table: Table) -> Dict[str, Any]:
    columns = [[c.name, c.type, list(c.constraints)] for c in table.columns]
    names = list(table.column_names)
    rows = [[encode_value(row.get(name)) for name in names] for row in table.rows]
    doc = {"name": table.name, "columns": columns, "rows": rows}
    if table.indexes:
        # Definitions only — index contents are derived state, rebuilt from
        # the restored rows (matching the WAL's create_index records).
        doc["indexes"] = [
            [index.name, index.column, index.kind]
            for index in sorted(table.indexes.values(), key=lambda i: i.name)
        ]
    return doc


def _snapshot_xattrs(inode: Inode) -> Dict[str, Any]:
    xattrs: Dict[str, Any] = {}
    for name, value in sorted(inode.xattrs.items()):
        if isinstance(value, Filter):
            try:
                xattrs[name] = {"__filter__": serialize_filter(value)}
            except SerializationError:
                # Code-carrying filter (callable predicate): not durable by
                # design; the application re-attaches it at start-up.
                continue
        else:
            try:
                xattrs[name] = encode_value(value)
            except SerializationError:
                continue
    return xattrs


def build_snapshot(engine: Engine, fs: FileSystem, wal_start: int) -> Dict[str, Any]:
    """The snapshot document for the current state of ``engine`` + ``fs``.

    Must be called with the durability gate held exclusively: the builder
    reads the table dicts and the inode tree lock-free, which is only safe
    because every mutation runs under the shared side of the gate.
    """
    tables = [
        _snapshot_table(engine.tables[name]) for name in sorted(engine.tables)
    ]
    tree: List[Dict[str, Any]] = []
    for path in fs.walk("/"):
        node = fs._lookup(path)
        if node is None:
            continue
        entry: Dict[str, Any] = {"path": path, "kind": node.kind}
        if node.is_file:
            entry["data"] = node.data.hex()
        xattrs = _snapshot_xattrs(node)
        if xattrs:
            entry["xattrs"] = xattrs
        tree.append(entry)
    return {
        "version": SNAPSHOT_VERSION,
        "wal_start": int(wal_start),
        "tables": tables,
        "fs": tree,
    }


def restore_snapshot(
    doc: Dict[str, Any], engine: Engine, fs: FileSystem, *, tolerant: bool = False
) -> None:
    """Load a snapshot document into ``engine`` and ``fs`` (replacing their
    contents).  Runs before the environment serves anything, so it touches
    the structures directly."""
    engine.tables.clear()
    for spec in doc.get("tables", []):
        columns = [
            nodes.ColumnDef(name, type, tuple(constraints))
            for name, type, constraints in spec["columns"]
        ]
        table = Table(spec["name"], columns)
        names = table.column_names
        table.rows = [
            {name: decode_value(value) for name, value in zip(names, row)}
            for row in spec["rows"]
        ]
        for index_name, column, kind in spec.get("indexes", []):
            index = SecondaryIndex(index_name, table.name, column, kind)
            index.rebuild(table.rows)
            table.indexes[index_name] = index
        engine.tables[table.name] = table

    fs.root = Inode("dir", "/")
    for entry in doc.get("fs", []):
        path = entry["path"]
        node = _materialize(fs, path, entry["kind"])
        if entry["kind"] == "file":
            node.data = bytes.fromhex(entry.get("data", ""))
        for name, value in entry.get("xattrs", {}).items():
            node.xattrs[name] = _restore_xattr(value, tolerant=tolerant)


def _materialize(fs: FileSystem, path: str, kind: str) -> Inode:
    if path == "/":
        return fs.root
    parent = fs.root
    parts = fspath.parts(path)
    for part in parts[:-1]:
        child = parent.entries.get(part)
        if child is None:
            child = Inode("dir", part)
            parent.entries[part] = child
        parent = child
    name = parts[-1]
    node = parent.entries.get(name)
    if node is None or node.kind != kind:
        node = Inode(kind, name)
        parent.entries[name] = node
    return node


def _restore_xattr(value: Any, *, tolerant: bool) -> Any:
    if isinstance(value, Mapping) and "__filter__" in value:
        return deserialize_filter(value["__filter__"], tolerant=tolerant)
    return decode_value(value)


# -- snapshot files -----------------------------------------------------------


def _snapshot_name(wal_start: int) -> str:
    return f"{SNAPSHOT_PREFIX}{wal_start:08d}{_SNAPSHOT_SUFFIX}"


def _parse_snapshot_id(name: str) -> Optional[int]:
    if not (name.startswith(SNAPSHOT_PREFIX) and name.endswith(_SNAPSHOT_SUFFIX)):
        return None
    try:
        return int(name[len(SNAPSHOT_PREFIX) : -len(_SNAPSHOT_SUFFIX)])
    except ValueError:
        return None


def snapshot_ids(directory: str) -> List[int]:
    ids = []
    for name in os.listdir(directory):
        wal_start = _parse_snapshot_id(name)
        if wal_start is not None:
            ids.append(wal_start)
    return sorted(ids)


def write_snapshot(directory: str, doc: Dict[str, Any], *, sync: bool = True) -> str:
    """Write ``doc`` atomically as ``snap-<wal_start>.snap``; returns the
    path.  Temp-file + rename: a crash mid-write never damages an existing
    snapshot, and a half-written temp file is simply ignored by the loader."""
    path = os.path.join(directory, _snapshot_name(doc["wal_start"]))
    tmp = path + ".tmp"
    # A snapshot is one trusted frame with no size cap (a whole store can
    # exceed the WAL's per-record limit); the loader reads it uncapped too.
    frame = encode_record(doc, max_bytes=None)
    with open(tmp, "wb") as handle:
        handle.write(frame)
        if sync:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if sync:
        _fsync_directory(directory)
    return path


def load_snapshot(directory: str, wal_start: int) -> Optional[Dict[str, Any]]:
    path = os.path.join(directory, _snapshot_name(wal_start))
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError:
        return None
    records, valid = decode_records(data, max_record_bytes=None)
    if len(records) != 1 or valid != len(data):
        return None
    doc = records[0]
    if doc.get("version") != SNAPSHOT_VERSION or "wal_start" not in doc:
        return None
    return doc


def load_latest_snapshot(directory: str) -> Optional[Dict[str, Any]]:
    """The newest snapshot that validates (CRC + structure), or ``None``
    when no snapshot file exists (a fresh store).

    Scans newest-first so a corrupt newest snapshot falls back to an older
    valid one — the WAL segments it would have retired are still on disk,
    so recovery stays exact.  But when snapshot files *exist* and none
    validates (corruption/bitrot), there is no state to fall back to —
    compaction already deleted the WAL prefix they covered — so this raises
    :class:`~repro.core.exceptions.RecoveryError` rather than letting
    recovery silently present an empty store as success."""
    ids = snapshot_ids(directory)
    for wal_start in reversed(ids):
        doc = load_snapshot(directory, wal_start)
        if doc is not None:
            return doc
    if ids:
        names = ", ".join(_snapshot_name(wal_start) for wal_start in ids)
        raise RecoveryError(
            f"snapshot file(s) {names} in {directory!r} exist but none "
            "validates; recovering from an empty store would silently lose "
            "data — restore the snapshot from backup, or delete the store "
            "directory to start empty deliberately"
        )
    return None


def retire_snapshots_except(directory: str, keep_wal_start: int) -> List[int]:
    """Delete every snapshot other than ``keep_wal_start`` (compaction)."""
    retired = []
    for wal_start in snapshot_ids(directory):
        if wal_start != keep_wal_start:
            os.unlink(os.path.join(directory, _snapshot_name(wal_start)))
            retired.append(wal_start)
    return retired


def _fsync_directory(directory: str) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
