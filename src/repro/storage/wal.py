"""Append-only, checksummed write-ahead log with group commit.

The durable backend follows the TWIAD/write-optimized shape the ROADMAP
names for ingest-heavy workloads: every mutation becomes one small record
appended to the tail of a log segment, so the storage cost of a write is a
sequential append — never a random update — and the random-access state
lives only in memory, rebuilt on recovery from snapshot + log tail.

Wire format — each record is length-prefixed and checksummed (the framing
lives in :mod:`repro.storage.framing`, shared with the audit ledger)::

    +----------------+----------------+----------------------+
    | length (4B BE) | crc32 (4B BE)  | payload (JSON, UTF-8) |
    +----------------+----------------+----------------------+

A reader accepts a record only if the full frame is present *and* the CRC
matches; anything else is a **torn tail** — the crash left a partial final
record — and replay stops exactly there, yielding the committed prefix.
:meth:`WriteAheadLog.open` truncates a torn tail before appending, so the
log never contains garbage between valid records.

Group commit (the one-fsync-absorbs-a-batch design): :meth:`append` only
buffers the encoded frame under the log mutex and hands back an LSN;
:meth:`commit` makes an LSN durable.  The first committer becomes the
*leader* — it takes the whole buffered batch, writes it, and issues one
``fsync`` — while concurrent committers wait as *followers* and return as
soon as the leader's sync covers their LSN.  Under N concurrent writers one
disk sync amortizes across all records buffered while the previous sync was
in flight, which is what keeps durable throughput within a small factor of
in-memory throughput (see ``benchmarks/bench_wal_commit.py``).
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

from . import framing
from .framing import SEGMENT_PREFIX, decode_value, encode_value

__all__ = ["WriteAheadLog", "encode_record", "decode_records",
           "encode_value", "decode_value", "SEGMENT_PREFIX"]

#: WAL segment files are ``seg-<id>.wal`` inside the log directory.
_SEGMENT_SUFFIX = ".wal"

#: Hard upper bound on one record's payload (see
#: :data:`repro.storage.framing.MAX_RECORD_BYTES`).  Kept as a module
#: attribute here so existing callers — and tests that shrink it — keep
#: working: the wrappers below resolve it at call time.
MAX_RECORD_BYTES = framing.MAX_RECORD_BYTES

#: Sentinel meaning "use the module's MAX_RECORD_BYTES at call time".
_DEFAULT_LIMIT = object()


def encode_record(record: Dict[str, Any], *, max_bytes=_DEFAULT_LIMIT) -> bytes:
    """One framed record (see :func:`repro.storage.framing.encode_record`),
    with the size limit defaulting to this module's ``MAX_RECORD_BYTES``."""
    limit = MAX_RECORD_BYTES if max_bytes is _DEFAULT_LIMIT else max_bytes
    return framing.encode_record(record, max_bytes=limit)


def decode_records(data: bytes, *,
                   max_record_bytes=_DEFAULT_LIMIT
                   ) -> Tuple[List[Dict[str, Any]], int]:
    """Decode every complete, valid record from ``data`` (see
    :func:`repro.storage.framing.decode_records`), with the size limit
    defaulting to this module's ``MAX_RECORD_BYTES``."""
    limit = (MAX_RECORD_BYTES if max_record_bytes is _DEFAULT_LIMIT
             else max_record_bytes)
    return framing.decode_records(data, max_record_bytes=limit)


def _segment_name(segment_id: int) -> str:
    return framing.segment_name(segment_id, _SEGMENT_SUFFIX)


def _parse_segment_id(name: str) -> Optional[int]:
    return framing.parse_segment_id(name, _SEGMENT_SUFFIX)


class WriteAheadLog:
    """A segmented append-only log on a real directory.

    One segment file is open for append at a time; :meth:`rotate` seals it
    and starts the next (the checkpoint boundary — see
    :class:`~repro.storage.durability.Durability`), and
    :meth:`retire_before` deletes segments a snapshot fully covers.

    ``sync`` selects the durability barrier per flush: ``"fsync"`` (the
    default — survives OS crash), ``"flush"`` (OS buffer only — survives
    process crash; useful for tests and latency experiments) or ``"none"``.
    ``group_commit=False`` disables the leader/follower batching so every
    appended record pays its own sync — kept only so the benchmark can
    measure what batching buys.
    """

    def __init__(self, directory: str, *, sync: str = "fsync",
                 group_commit: bool = True):
        if sync not in ("fsync", "flush", "none"):
            raise ValueError(f"unknown sync mode {sync!r}")
        self.directory = directory
        self.sync = sync
        self.group_commit = group_commit
        os.makedirs(directory, exist_ok=True)

        self._cond = threading.Condition()
        self._next_lsn = 1
        self._durable_lsn = 0
        self._flushing = False
        self._pending: List[bytes] = []
        self._closed = False
        #: First write/sync failure, if any.  A failed flush poisons the
        #: log: the batch may be partially on disk with no sync barrier, so
        #: no later LSN can ever be acknowledged durable again.
        self._failure: Optional[BaseException] = None

        #: Observability counters: ``syncs`` vs ``records`` is the
        #: group-commit batching ratio the benchmark reports.
        self.records = 0
        self.syncs = 0
        self.bytes_written = 0

        existing = self.segment_ids()
        self._segment_id = existing[-1] if existing else 1
        self._file = self._open_segment(self._segment_id)

    # -- segment management -------------------------------------------------

    def segment_path(self, segment_id: int) -> str:
        return os.path.join(self.directory, _segment_name(segment_id))

    def segment_ids(self) -> List[int]:
        ids = []
        for name in os.listdir(self.directory):
            segment_id = _parse_segment_id(name)
            if segment_id is not None:
                ids.append(segment_id)
        return sorted(ids)

    def _open_segment(self, segment_id: int):
        """Open a segment for append, truncating any torn tail first."""
        path = self.segment_path(segment_id)
        if os.path.exists(path):
            with open(path, "rb") as handle:
                data = handle.read()
            _, valid = decode_records(data)
            if valid != len(data):
                with open(path, "r+b") as handle:
                    handle.truncate(valid)
        return open(path, "ab")

    def rotate(self) -> int:
        """Seal the current segment and start the next; returns the new id.

        Callers must quiesce appends first (the durability layer holds its
        exclusive gate and drains :meth:`commit`): rotating with records
        still buffered would write them into the wrong segment.
        """
        with self._cond:
            self._check_poisoned()
            if self._pending or self._flushing:
                raise RuntimeError("rotate() with undrained records; "
                                   "commit() first")
            self._file.close()
            self._segment_id += 1
            self._file = self._open_segment(self._segment_id)
            self._sync_directory()
            return self._segment_id

    def retire_before(self, segment_id: int) -> List[int]:
        """Delete every sealed segment with id < ``segment_id`` (compaction:
        a snapshot covering them has been durably written)."""
        retired = []
        for old in self.segment_ids():
            if old < segment_id and old != self._segment_id:
                os.unlink(self.segment_path(old))
                retired.append(old)
        if retired:
            self._sync_directory()
        return retired

    def _sync_directory(self) -> None:
        if self.sync != "fsync":
            return
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- append / commit ----------------------------------------------------

    def append(self, record: Dict[str, Any]) -> int:
        """Buffer one record; returns its LSN (not yet durable)."""
        frame = encode_record(record)
        with self._cond:
            if self._closed:
                raise RuntimeError("append() on a closed WAL")
            self._check_poisoned()
            lsn = self._next_lsn
            self._next_lsn += 1
            self.records += 1
            if self.group_commit:
                self._pending.append(frame)
            else:
                # Batching disabled: pay the write+sync per record, under
                # the mutex (benchmark reference mode).
                try:
                    self._write_frames([frame])
                except BaseException as exc:
                    self._failure = exc
                    raise
                self._durable_lsn = lsn
        return lsn

    def log(self, record: Dict[str, Any]) -> int:
        """Append and make durable in one call."""
        lsn = self.append(record)
        self.commit(lsn)
        return lsn

    def commit(self, lsn: Optional[int] = None) -> None:
        """Block until every record up to ``lsn`` (default: all appended so
        far) is durable.  Leader/follower group commit: see module docstring.

        Raises if the flush covering ``lsn`` failed — whether this thread
        led it or a leader failed while this thread waited as a follower.
        The durable LSN only ever advances on a *successful* sync, and a
        failure poisons the log (the batch was consumed and may sit
        partially on disk unsynced), so no thread can observe a durability
        acknowledgment for records that never reached the disk.
        """
        with self._cond:
            if lsn is None:
                lsn = self._next_lsn - 1
            while True:
                if self._durable_lsn >= lsn:
                    return
                self._check_poisoned()
                if not self._flushing:
                    break
                self._cond.wait()
            self._flushing = True
            batch = self._pending
            self._pending = []
            upto = self._next_lsn - 1
        try:
            self._write_frames(batch)
        except BaseException as exc:
            with self._cond:
                self._flushing = False
                self._failure = exc
                self._cond.notify_all()
            raise
        with self._cond:
            self._flushing = False
            self._durable_lsn = max(self._durable_lsn, upto)
            self._cond.notify_all()

    def _check_poisoned(self) -> None:
        """Raise (under the mutex) if an earlier flush failed."""
        if self._failure is not None:
            raise RuntimeError(
                "WAL write failed earlier; records past LSN "
                f"{self._durable_lsn} are not durable") from self._failure

    def _write_frames(self, frames: List[bytes]) -> None:
        if frames:
            data = b"".join(frames)
            self._file.write(data)
            self.bytes_written += len(data)
        if self.sync != "none":
            self._file.flush()
            if self.sync == "fsync":
                os.fsync(self._file.fileno())
        self.syncs += 1

    @property
    def size(self) -> int:
        """Bytes written to the current segment (durable + buffered)."""
        with self._cond:
            return (self._file.tell()
                    + sum(len(frame) for frame in self._pending))

    # -- replay -------------------------------------------------------------

    def replay(self, start_segment: int = 0) -> Iterator[Dict[str, Any]]:
        """Yield every valid record from segments >= ``start_segment`` in
        order, stopping at the first torn/corrupt frame (prefix semantics)."""
        for segment_id in self.segment_ids():
            if segment_id < start_segment:
                continue
            with open(self.segment_path(segment_id), "rb") as handle:
                data = handle.read()
            records, valid = decode_records(data)
            yield from records
            if valid != len(data):
                return

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Flush and close.  Re-raises a pending/previous flush failure
        (after closing the file) — losing buffered records must be loud."""
        with self._cond:
            if self._closed:
                return
        try:
            self.commit()
        finally:
            with self._cond:
                self._closed = True
                self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
