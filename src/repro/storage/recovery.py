"""Crash recovery: replay the WAL tail over the latest snapshot.

Recovery is a pure fold: start from the newest valid snapshot (or empty
state), then apply every WAL record from segment ``wal_start`` onwards in
log order.  Replay applies *physical* effects — the records the engine and
filesystem logged are row images and byte images, not statements — so the
recovered state is byte-identical to what the committed prefix of the log
described, independent of expression evaluation or filter behaviour.

Torn final records are tolerated by construction: the WAL reader stops at
the first frame whose length/CRC/JSON does not validate
(:func:`repro.storage.wal.decode_records`), so a crash mid-append simply
recovers the state as of the last complete record.

Replay bypasses the RESIN-aware layers (``Database``/``ResinFS``) and their
filters on purpose: the checks already ran when the operation was first
admitted and logged, and re-running them would need the original request
context (the authenticated user) which no longer exists.  Nothing re-logs
either — the durability service only attaches to the environment after
replay finishes.
"""

from __future__ import annotations

from typing import Any, Dict

from ..core.exceptions import SerializationError
from ..fs.filesystem import FileSystem, Inode
from ..fs import path as fspath
from ..fs.resinfs import FILTER_XATTR, POLICY_XATTR
from ..sql import nodes
from ..sql.engine import Engine, Table
from ..sql.indexes import SecondaryIndex
from .snapshot import deserialize_filter
from .wal import decode_value

__all__ = ["apply_record", "replay"]


def replay(records, engine: Engine, fs: FileSystem, *, tolerant: bool = False) -> int:
    """Apply ``records`` (an iterable of decoded WAL records) in order;
    returns the count applied."""
    applied = 0
    for record in records:
        apply_record(record, engine, fs, tolerant=tolerant)
        applied += 1
    return applied


def apply_record(
    record: Dict[str, Any], engine: Engine, fs: FileSystem, *, tolerant: bool = False
) -> None:
    op = record.get("op")
    handler = _HANDLERS.get(op)
    if handler is None:
        if tolerant:
            # A newer deployment may log record types this one does not
            # know; skipping is the best a tolerant reader can do.
            return
        raise SerializationError(f"unknown WAL record type {op!r}")
    handler(record, engine, fs, tolerant)


# -- SQL records --------------------------------------------------------------


def _sql_create(record, engine: Engine, fs, tolerant) -> None:
    name = record["table"]
    if name in engine.tables:
        return
    columns = [
        nodes.ColumnDef(col, type, tuple(constraints))
        for col, type, constraints in record["columns"]
    ]
    engine.tables[name] = Table(name, columns)


def _sql_drop(record, engine: Engine, fs, tolerant) -> None:
    engine.tables.pop(record["table"], None)


def _sql_table(record, engine: Engine) -> Table:
    table = engine.tables.get(record["table"])
    if table is None:
        raise SerializationError(
            f"WAL references unknown table {record['table']!r}"
        )
    # Records carry the full column list of the moment they were logged, so
    # lazily-added columns (the SQL channel's policy columns) materialize
    # during replay exactly as they did live.
    for name in record["columns"]:
        if not table.has_column(name):
            table.add_column(nodes.ColumnDef(name, "TEXT"))
    return table


def _sql_insert(record, engine: Engine, fs, tolerant) -> None:
    table = _sql_table(record, engine)
    names = record["columns"]
    first = len(table.rows)
    for values in record["rows"]:
        row = {name: None for name in table.column_names}
        row.update(zip(names, (decode_value(v) for v in values)))
        table.rows.append(row)
    # Mirror the engine's live maintenance: appended rows enter the
    # secondary indexes incrementally (positions only grow on insert).
    for index in table.indexes.values():
        for position in range(first, len(table.rows)):
            index.add_row(position, table.rows[position])


def _sql_update(record, engine: Engine, fs, tolerant) -> None:
    table = _sql_table(record, engine)
    names = record["columns"]
    for index, values in record["updates"]:
        if not 0 <= index < len(table.rows):
            raise SerializationError(
                f"WAL update index {index} out of range for table "
                f"{table.name!r}"
            )
        table.rows[index].update(zip(names, (decode_value(v) for v in values)))
    _rebuild_indexes(table)


def _sql_delete(record, engine: Engine, fs, tolerant) -> None:
    table = _sql_table(record, engine)
    doomed = set(record["indices"])
    table.rows = [
        row for index, row in enumerate(table.rows) if index not in doomed
    ]
    _rebuild_indexes(table)


def _rebuild_indexes(table: Table) -> None:
    for index in table.indexes.values():
        index.rebuild(table.rows)


def _sql_create_index(record, engine: Engine, fs, tolerant) -> None:
    # The WAL stores only the index *definition*; the contents are derived
    # state, rebuilt here from the rows recovered so far (and maintained by
    # the replay handlers above for the records that follow).
    table = engine.tables.get(record["table"])
    if table is None:
        if tolerant:
            return
        raise SerializationError(
            f"WAL references unknown table {record['table']!r}"
        )
    name = record["index"]
    index = SecondaryIndex(
        name, record["table"], record["column"], record.get("kind", "sorted")
    )
    index.rebuild(table.rows)
    table.indexes[name] = index


def _sql_drop_index(record, engine: Engine, fs, tolerant) -> None:
    table = engine.tables.get(record.get("table", ""))
    if table is not None:
        table.indexes.pop(record["index"], None)


# -- filesystem records -------------------------------------------------------


def _fs_node(fs: FileSystem, path: str) -> Inode:
    node = fs._lookup(path)
    if node is None:
        raise SerializationError(f"WAL references unknown path {path!r}")
    return node


def _fs_write(record, engine, fs: FileSystem, tolerant) -> None:
    path = record["path"]
    data = bytes.fromhex(record["data"])
    parent = fs._lookup(fspath.dirname(path))
    if parent is None or not parent.is_dir:
        raise SerializationError(
            f"WAL write to {path!r} but its directory does not exist"
        )
    name = fspath.basename(path)
    node = parent.entries.get(name)
    if node is None or not node.is_file:
        node = Inode("file", name)
        parent.entries[name] = node
    node.data = data
    policies = record.get("policies")
    if policies is None:
        node.xattrs.pop(POLICY_XATTR, None)
    else:
        node.xattrs[POLICY_XATTR] = policies


def _fs_mkdir(record, engine, fs: FileSystem, tolerant) -> None:
    path = record["path"]
    parent = fs.root
    for part in fspath.parts(path):
        child = parent.entries.get(part)
        if child is None:
            child = Inode("dir", part)
            parent.entries[part] = child
        elif not child.is_dir:
            raise SerializationError(
                f"WAL mkdir {path!r} collides with an existing file"
            )
        parent = child


def _fs_unlink(record, engine, fs: FileSystem, tolerant) -> None:
    path = record["path"]
    parent = fs._lookup(fspath.dirname(path))
    if parent is not None and parent.is_dir:
        parent.entries.pop(fspath.basename(path), None)


def _fs_rename(record, engine, fs: FileSystem, tolerant) -> None:
    src, dst = record["src"], record["dst"]
    node = _fs_node(fs, src)
    src_parent = _fs_node(fs, fspath.dirname(src))
    dst_parent = _fs_node(fs, fspath.dirname(dst))
    del src_parent.entries[fspath.basename(src)]
    node.name = fspath.basename(dst)
    dst_parent.entries[node.name] = node


def _fs_filter(record, engine, fs: FileSystem, tolerant) -> None:
    node = _fs_node(fs, record["path"])
    node.xattrs[FILTER_XATTR] = deserialize_filter(
        record["filter"], tolerant=tolerant
    )


def _fs_unfilter(record, engine, fs: FileSystem, tolerant) -> None:
    node = _fs_node(fs, record["path"])
    node.xattrs.pop(FILTER_XATTR, None)


_HANDLERS = {
    "sql.create": _sql_create,
    "sql.drop": _sql_drop,
    "sql.insert": _sql_insert,
    "sql.update": _sql_update,
    "sql.delete": _sql_delete,
    "sql.create_index": _sql_create_index,
    "sql.drop_index": _sql_drop_index,
    "fs.write": _fs_write,
    "fs.mkdir": _fs_mkdir,
    "fs.unlink": _fs_unlink,
    "fs.rename": _fs_rename,
    "fs.filter": _fs_filter,
    "fs.unfilter": _fs_unfilter,
}
