"""Durable storage engine: write-ahead log + snapshot compaction.

The subsystem the SQL engine and ResinFS share to make state — and the
policies attached to it — survive restarts (Section 3.4.1 of the paper):

* :mod:`repro.storage.wal` — append-only, length-prefixed + checksummed log
  segments with leader/follower group commit;
* :mod:`repro.storage.snapshot` — full-state snapshot writer/loader using
  the :mod:`repro.core.serialization` codecs, plus the persistent-filter
  codec;
* :mod:`repro.storage.recovery` — replay of the WAL tail over the latest
  snapshot, tolerating a torn final record;
* :mod:`repro.storage.durability` — the opt-in ``Durability`` service that
  wires it all into an :class:`~repro.environment.Environment`.

Entry points: ``Durability.open(env, path)`` or, one level up,
``Resin.open(path)``.
"""

from .durability import SERVICE_NAME, Durability
from .recovery import replay
from .snapshot import (
    UnknownFilter,
    build_snapshot,
    deserialize_filter,
    load_latest_snapshot,
    restore_snapshot,
    serialize_filter,
    write_snapshot,
)
from .wal import WriteAheadLog, decode_records, encode_record

__all__ = [
    "Durability",
    "SERVICE_NAME",
    "WriteAheadLog",
    "UnknownFilter",
    "encode_record",
    "decode_records",
    "build_snapshot",
    "restore_snapshot",
    "write_snapshot",
    "load_latest_snapshot",
    "serialize_filter",
    "deserialize_filter",
    "replay",
]
