"""Append-only audit ledger: framed segments, rotation, retention.

The ledger is the durable half of the audit subsystem.  It reuses the
write-ahead log's wire format (:mod:`repro.storage.framing`): each event is
one length-prefixed + CRC framed JSON record appended to the tail of the
current ``seg-<id>.audit`` segment.  When a segment grows past
``segment_bytes`` it is sealed and the next one started; when more than
``retain_segments`` sealed segments exist the oldest are purged — audit
data ages out instead of growing without bound (the retention contract is
documented in ``docs/API.md``).

Crash story, inherited from the framing: a torn final record is truncated
on open and iteration stops at the first invalid frame, so after any crash
the ledger contains an exact *prefix* of the events that were appended.
Every event carries a monotonic ``seq`` assigned here; on reopen the
sequence continues from the highest surviving record, so sequence numbers
never repeat within a directory (modulo purged history).

Unlike the WAL there is no group commit: the recorder's single background
writer thread is the only appender, and audit events are observability
data — ``sync="flush"`` (survive process crash) is the default, with
``"fsync"``/``"none"`` available.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, Iterator, List, Optional

from ..storage import framing

__all__ = ["AuditLedger", "MemoryLedger", "SEGMENT_SUFFIX"]

#: Audit segment files are ``seg-<id>.audit`` inside the ledger directory.
SEGMENT_SUFFIX = ".audit"

#: Default rotation point: seal a segment once it passes 4 MiB.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

#: Default retention: keep at most this many *sealed* segments (the active
#: one is never purged), oldest-first purge beyond it.
DEFAULT_RETAIN_SEGMENTS = 8


class AuditLedger:
    """Segmented append-only event log on a real directory."""

    def __init__(
        self,
        directory: str,
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        retain_segments: int = DEFAULT_RETAIN_SEGMENTS,
        sync: str = "flush",
    ):
        if sync not in ("fsync", "flush", "none"):
            raise ValueError(f"unknown sync mode {sync!r}")
        if segment_bytes <= 0:
            raise ValueError("segment_bytes must be positive")
        if retain_segments < 1:
            raise ValueError("retain_segments must be >= 1")
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.retain_segments = retain_segments
        self.sync = sync
        os.makedirs(directory, exist_ok=True)

        self._lock = threading.Lock()
        self._closed = False
        #: Observability counters.
        self.events_written = 0
        self.segments_purged = 0

        existing = self.segment_ids()
        self._segment_id = existing[-1] if existing else 1
        self._next_seq = self._recover_next_seq(existing)
        self._file = self._open_segment(self._segment_id)

    # -- segments -----------------------------------------------------------

    def segment_path(self, segment_id: int) -> str:
        return os.path.join(
            self.directory, framing.segment_name(segment_id, SEGMENT_SUFFIX)
        )

    def segment_ids(self) -> List[int]:
        ids = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        for name in names:
            segment_id = framing.parse_segment_id(name, SEGMENT_SUFFIX)
            if segment_id is not None:
                ids.append(segment_id)
        return sorted(ids)

    def _read_segment(self, segment_id: int) -> List[Dict[str, Any]]:
        try:
            with open(self.segment_path(segment_id), "rb") as handle:
                data = handle.read()
        except OSError:
            return []
        records, _ = framing.decode_records(data)
        return records

    def _recover_next_seq(self, existing: List[int]) -> int:
        """Continue the sequence after the highest surviving event.

        Only valid (CRC-checked) records count: a torn tail never advances
        the sequence, so a reopened ledger hands out exactly the numbers
        the lost suffix would have used.
        """
        highest = 0
        for segment_id in reversed(existing):
            records = self._read_segment(segment_id)
            if records:
                highest = max(
                    (
                        record.get("seq", 0)
                        for record in records
                        if isinstance(record.get("seq"), int)
                    ),
                    default=0,
                )
                if highest:
                    break
        return highest + 1

    def _open_segment(self, segment_id: int):
        """Open a segment for append, truncating any torn tail first."""
        path = self.segment_path(segment_id)
        if os.path.exists(path):
            with open(path, "rb") as handle:
                data = handle.read()
            _, valid = framing.decode_records(data)
            if valid != len(data):
                with open(path, "r+b") as handle:
                    handle.truncate(valid)
        return open(path, "ab")

    def _rotate_locked(self) -> None:
        self._file.close()
        self._segment_id += 1
        self._file = self._open_segment(self._segment_id)
        self._purge_locked()

    def _purge_locked(self) -> None:
        sealed = [sid for sid in self.segment_ids() if sid != self._segment_id]
        excess = len(sealed) - self.retain_segments
        for old in sealed[: max(excess, 0)]:
            try:
                os.unlink(self.segment_path(old))
            except OSError:
                continue
            self.segments_purged += 1

    # -- append -------------------------------------------------------------

    def append(self, event: Dict[str, Any]) -> int:
        """Frame and append one event; returns its assigned ``seq``.

        The event dict is mutated to carry the ``seq``.  Rotation and
        retention run inline after the write — both are cheap directory
        operations on the writer thread, never on a request path.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("append() on a closed audit ledger")
            seq = self._next_seq
            self._next_seq += 1
            event["seq"] = seq
            frame = framing.encode_record(event)
            self._file.write(frame)
            if self.sync != "none":
                self._file.flush()
                if self.sync == "fsync":
                    os.fsync(self._file.fileno())
            self.events_written += 1
            if self._file.tell() >= self.segment_bytes:
                self._rotate_locked()
            return seq

    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._file.flush()
                if self.sync == "fsync":
                    os.fsync(self._file.fileno())

    # -- read ---------------------------------------------------------------

    def iter_events(self, *, since_seq: int = 0) -> Iterator[Dict[str, Any]]:
        """Yield surviving events in order, one segment at a time.

        Streams segment-by-segment — the whole ledger is never resident —
        and stops a segment at its first invalid frame (prefix semantics).
        Safe to run concurrently with appends: an in-flight final frame
        simply doesn't decode yet.
        """
        for segment_id in self.segment_ids():
            for record in self._read_segment(segment_id):
                if record.get("seq", 0) > since_seq:
                    yield record

    @property
    def next_seq(self) -> int:
        with self._lock:
            return self._next_seq

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._file.flush()
            finally:
                self._file.close()

    def __enter__(self) -> "AuditLedger":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class MemoryLedger:
    """In-process ledger with the :class:`AuditLedger` append/iter contract.

    Used when audit is enabled without a directory (``resin.enable_audit()``
    with no path, the Table 4 parity harness, unit tests): events live in a
    bounded in-memory list — oldest purged past ``retain_events`` — and
    nothing touches the filesystem.
    """

    def __init__(self, *, retain_events: int = 100_000):
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._next_seq = 1
        self.retain_events = retain_events
        self.events_written = 0
        self.segments_purged = 0

    def append(self, event: Dict[str, Any]) -> int:
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            event["seq"] = seq
            self._events.append(event)
            self.events_written += 1
            if len(self._events) > self.retain_events:
                del self._events[: len(self._events) - self.retain_events]
            return seq

    def flush(self) -> None:
        pass

    def iter_events(self, *, since_seq: int = 0) -> Iterator[Dict[str, Any]]:
        with self._lock:
            snapshot = list(self._events)
        for record in snapshot:
            if record.get("seq", 0) > since_seq:
                yield record

    @property
    def next_seq(self) -> int:
        with self._lock:
            return self._next_seq

    def close(self) -> None:
        pass

    directory: Optional[str] = None
