"""After-the-fact queries over the audit ledger.

Everything here streams from :meth:`~repro.audit.ledger.AuditLedger.iter_events`
one segment at a time — the whole ledger is never loaded — and returns
generators (``events``) or small summaries (``provenance_of``), so forensic
questions stay cheap even against a ledger that has been ingesting for
days.

Policy matching accepts three spellings: a policy *instance* (matches
events whose serialized blob equals the instance's — same class and
fields), a policy *class*, or the class's (qualified or bare) name as a
string (both match every instance of that class).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from ..core.serialization import qualified_name, serialize_policy

__all__ = ["events", "provenance_of", "policy_matcher"]


def policy_matcher(policy: Any):
    """Build an ``event -> bool`` predicate for ``policy`` (see module doc)."""
    if policy is None:
        return lambda event: True
    if isinstance(policy, type):
        wanted_class = qualified_name(policy)

        def match_blob(blob: Dict[str, Any]) -> bool:
            cls = blob.get("class", "")
            return cls == wanted_class or cls.rsplit(".", 1)[-1] == policy.__name__

    elif isinstance(policy, str):

        def match_blob(blob: Dict[str, Any]) -> bool:
            cls = blob.get("class", "")
            return cls == policy or cls.rsplit(".", 1)[-1] == policy

    else:
        wanted = serialize_policy(policy)

        def match_blob(blob: Dict[str, Any]) -> bool:
            return blob == wanted

    def match_event(event: Dict[str, Any]) -> bool:
        return any(match_blob(blob) for blob in event.get("policies", ()))

    return match_event


def events(
    ledger: Any,
    *,
    policy: Any = None,
    principal: Optional[str] = None,
    request: Optional[int] = None,
    since: Optional[float] = None,
    kind: Optional[str] = None,
    verdict: Optional[str] = None,
    since_seq: int = 0,
) -> Iterator[Dict[str, Any]]:
    """Stream matching events in ledger order.

    ``policy`` matches per :func:`policy_matcher`; ``principal`` and
    ``request`` match the attributed user / request id exactly; ``since``
    is a wall-clock lower bound (``event["ts"] >= since``); ``kind`` /
    ``verdict`` match the event kind (``"export"``, ``"declassify"``,
    ``"sql.scan"``, ``"fs.deny"``, ``"policy_dropped"``) and decision
    (``"allow"`` / ``"deny"``).
    """
    match_policy = policy_matcher(policy)
    for event in ledger.iter_events(since_seq=since_seq):
        if kind is not None and event.get("kind") != kind:
            continue
        if verdict is not None and event.get("verdict") != verdict:
            continue
        if principal is not None and event.get("principal") != principal:
            continue
        if request is not None and event.get("request") != request:
            continue
        if since is not None and event.get("ts", 0) < since:
            continue
        if not match_policy(event):
            continue
        yield event


#: Event kinds that mean "data carrying the policy actually crossed a
#: boundary": allowed exports and explicit declassifications.  Denied
#: exports are *attempts* — they show up in ``events(verdict="deny")`` but
#: not in a provenance chain.
_EXPORT_KINDS = ("export", "declassify", "sql.scan")


def provenance_of(ledger: Any, policy: Any) -> List[Dict[str, Any]]:
    """The provenance chain for ``policy``: one entry per request that
    exported (or declassified) data carrying it, in first-export order.

    Each entry is ``{"request", "principal", "routes", "first_ts",
    "last_ts", "events"}`` — ``events`` counts that request's matching
    boundary crossings.  Requestless crossings (no request in flight)
    aggregate under ``request=None``.
    """
    match_policy = policy_matcher(policy)
    chain: List[Dict[str, Any]] = []
    by_request: Dict[Any, Dict[str, Any]] = {}
    for event in ledger.iter_events():
        if event.get("kind") not in _EXPORT_KINDS:
            continue
        if event.get("verdict") != "allow":
            continue
        if not match_policy(event):
            continue
        request = event.get("request")
        entry = by_request.get(request)
        if entry is None:
            entry = {
                "request": request,
                "principal": event.get("principal"),
                "routes": [],
                "first_ts": event.get("ts"),
                "last_ts": event.get("ts"),
                "events": 0,
            }
            by_request[request] = entry
            chain.append(entry)
        route = event.get("route")
        if route is not None and route not in entry["routes"]:
            entry["routes"].append(route)
        entry["last_ts"] = event.get("ts", entry["last_ts"])
        entry["events"] += 1
    return chain
