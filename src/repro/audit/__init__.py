"""Flow provenance ledger: append-only audit of policy decisions.

RESIN decides allow/deny at each filter boundary and then forgets; this
subsystem is the forensic memory.  An opt-in
:class:`~repro.audit.recorder.AuditRecorder` service observes every
export check, declassification and policy violation and appends one event
per decision to an :class:`~repro.audit.ledger.AuditLedger` — the same
length-prefixed + CRC framed segment format as the write-ahead log
(shared via :mod:`repro.storage.framing`), so the ledger inherits the
torn-tail/exact-prefix recovery story.  :mod:`repro.audit.query` answers
the after-the-fact questions ("which requests ever exported data carrying
this password's policy?") by streaming segments.

Recording **never changes a verdict**: the instrumentation hooks observe
allow/deny decisions and re-raise violations unchanged, and every
recording call is guarded so an audit failure cannot fail a request.
"""

from .ledger import AuditLedger, MemoryLedger
from .recorder import SERVICE_NAME, AuditRecorder, default_audit, recorder_for
from .query import events, provenance_of

__all__ = [
    "AuditLedger",
    "AuditRecorder",
    "MemoryLedger",
    "SERVICE_NAME",
    "default_audit",
    "events",
    "provenance_of",
    "recorder_for",
]
