"""The audit recorder service: decision capture off the hot path.

:class:`AuditRecorder` is an opt-in service on ``Environment.services``
(name :data:`SERVICE_NAME`).  Instrumented boundaries —
:class:`~repro.core.filter.DefaultFilter` export checks,
``resin.declassify()``, enforce-mode SQL scan decisions, filesystem
xattr-policy denials, ``TaintedStr.__format__`` policy drops — call
:meth:`record` with the raw decision; everything expensive (policy and
range-map serialization, framing, disk I/O) happens on a single background
writer thread, so the caller pays only a queue append.

Two invariants the instrumentation relies on:

* **Recording never changes a verdict.**  Hooks observe a decision and
  re-raise violations unchanged, and :meth:`record` swallows every
  exception (counted in ``record_errors``) — an audit failure must never
  fail a request.
* **Bounded memory.**  The queue holds at most ``queue_limit`` pending
  events; under pressure the *oldest* pending event is dropped and
  ``dropped_events`` incremented.  Audit is forensic observability, not a
  transaction log — losing the oldest unwritten event under overload beats
  blocking a request.

Request attribution is captured on the *caller's* thread (the writer
thread has no access to the caller's contextvars): request id, principal
and route come from :func:`~repro.core.request_context.current_request`
and the filter context at call time.  Range maps and policy objects are
immutable once built, so their serialization can safely run later on the
writer thread.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from ..core.request_context import current_request
from ..core.serialization import serialize_policy
from .ledger import AuditLedger, MemoryLedger

__all__ = [
    "SERVICE_NAME",
    "AuditRecorder",
    "default_audit",
    "recorder_for",
    "record_event",
]

SERVICE_NAME = "audit.recorder"

#: Provenance chains are *compact* by contract: at most this many tainted
#: segments per event (a page render's rangemap can hold hundreds).  Events
#: whose chain was cut carry ``provenance_truncated`` with the full count.
MAX_PROVENANCE_SEGMENTS = 64

#: Process-wide fallback recorder (see :func:`default_audit`).  Harnesses
#: whose scenarios build their own environments internally (the Table 4
#: attack suite) install a recorder here so every environment created while
#: the scope is active reports into it.
_DEFAULT_AUDIT: Optional["AuditRecorder"] = None


@contextmanager
def default_audit(recorder: "AuditRecorder"):
    """Make ``recorder`` the process-wide fallback within the scope.

    Mirrors :func:`repro.channels.sqlchan.default_policy_mode`: a module
    global with restore-on-exit, for harness code that cannot thread a
    recorder into every internally-constructed environment.
    """
    global _DEFAULT_AUDIT
    previous = _DEFAULT_AUDIT
    _DEFAULT_AUDIT = recorder
    try:
        yield recorder
    finally:
        _DEFAULT_AUDIT = previous


def recorder_for(env: Any) -> Optional["AuditRecorder"]:
    """The recorder observing ``env``: its registered service, else the
    process-wide default, else ``None`` (audit off — the common case)."""
    if env is not None:
        services = getattr(env, "services", None)
        if services is not None:
            recorder = services.get(SERVICE_NAME)
            if recorder is not None:
                return recorder
    return _DEFAULT_AUDIT


def record_event(env: Any, kind: str, **fields: Any) -> None:
    """Record ``kind`` into ``env``'s recorder, if any.  Never raises."""
    recorder = recorder_for(env)
    if recorder is not None:
        recorder.record(kind, **fields)


def _context_field(context: Any, key: str) -> Any:
    if context is None:
        return None
    getter = getattr(context, "get", None)
    if callable(getter):
        try:
            return getter(key)
        except Exception:
            return None
    return getattr(context, key, None)


class AuditRecorder:
    """Bounded-queue, background-writer recorder over an audit ledger."""

    def __init__(self, ledger: Optional[Any] = None, *, queue_limit: int = 4096):
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.ledger = ledger if ledger is not None else MemoryLedger()
        self.queue_limit = queue_limit
        self.env: Optional[Any] = None

        self._cond = threading.Condition()
        self._queue: List[Dict[str, Any]] = []
        self._busy = False
        self._closed = False
        #: Pending events dropped (oldest-first) because the queue was full.
        self.dropped_events = 0
        #: record()/serialization failures swallowed (audit must not raise).
        self.record_errors = 0
        #: Events durably handed to the ledger.
        self.events_recorded = 0

        self._writer = threading.Thread(
            target=self._writer_loop, name="resin-audit-writer", daemon=True
        )
        self._writer.start()

    # -- lifecycle (the Durability service shape) ----------------------------

    @classmethod
    def open(cls, env: Any, directory: str, **ledger_kwargs: Any) -> "AuditRecorder":
        """Open (or recover) the ledger in ``directory``, attach to ``env``."""
        recorder = cls(AuditLedger(directory, **ledger_kwargs))
        recorder.attach(env)
        return recorder

    def attach(self, env: Any) -> "AuditRecorder":
        env.services.register(SERVICE_NAME, self)
        self.env = env
        return self

    def close(self) -> None:
        """Drain the queue, stop the writer, close the ledger, detach."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._writer.join(timeout=10)
        try:
            if self.env is not None and self.env.services.get(SERVICE_NAME) is self:
                self.env.services.unregister(SERVICE_NAME)
        finally:
            self.env = None
            self.ledger.close()

    # -- capture (hot path) --------------------------------------------------

    def record(
        self,
        kind: str,
        *,
        verdict: Optional[str] = None,
        context: Any = None,
        policies: Any = None,
        rangemap: Any = None,
        violation: Optional[BaseException] = None,
        channel: Optional[str] = None,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Capture one decision.  Cheap (one list append) and non-raising.

        ``policies``/``rangemap`` are captured by reference — both are
        immutable value objects — and serialized on the writer thread.
        Request attribution is resolved here, on the caller's thread.
        """
        try:
            rctx = current_request()
            entry: Dict[str, Any] = {
                "ts": time.time(),
                "kind": kind,
                "verdict": verdict,
                "request": None,
                "principal": _context_field(context, "user"),
                "route": None,
                "channel": (
                    channel if channel is not None else _context_field(context, "type")
                ),
                "_policies": policies,
                "_rangemap": rangemap,
            }
            where = None
            for key in ("path", "addr", "recipient", "table"):
                value = _context_field(context, key)
                if value is not None:
                    where = str(value)
                    break
            if where is not None:
                entry["where"] = where
            if rctx is not None:
                entry["request"] = getattr(rctx, "request_id", None)
                if entry["principal"] is None:
                    entry["principal"] = rctx.user
                entry["route"] = rctx.route or (
                    getattr(rctx.request, "path", None)
                    if rctx.request is not None
                    else None
                )
            if violation is not None:
                entry["violation"] = {
                    "type": type(violation).__name__,
                    "message": str(violation),
                }
            if detail:
                entry["detail"] = detail
            with self._cond:
                if self._closed:
                    return
                if len(self._queue) >= self.queue_limit:
                    del self._queue[0]
                    self.dropped_events += 1
                self._queue.append(entry)
                self._cond.notify()
        except Exception:
            self.record_errors += 1

    # -- writer thread -------------------------------------------------------

    def _writer_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue and self._closed:
                    return
                batch, self._queue = self._queue, []
                self._busy = True
            try:
                for entry in batch:
                    try:
                        self.ledger.append(self._build_event(entry))
                        self.events_recorded += 1
                    except Exception:
                        self.record_errors += 1
            finally:
                with self._cond:
                    self._busy = False
                    self._cond.notify_all()

    def _build_event(self, entry: Dict[str, Any]) -> Dict[str, Any]:
        """Serialize the captured references into the JSON event."""
        policies = entry.pop("_policies", None)
        rangemap = entry.pop("_rangemap", None)
        blobs: List[Dict[str, Any]] = []
        index_of: Dict[str, int] = {}
        # Policies are interned value objects (PR 9): the same instance
        # recurs across segments, so an identity memo skips re-serializing
        # it; the content key below still dedupes distinct equal instances.
        id_memo: Dict[int, int] = {}

        def blob_index(policy: Any) -> Optional[int]:
            index = id_memo.get(id(policy))
            if index is not None:
                return index
            try:
                blob = serialize_policy(policy)
            except Exception:
                blob = {
                    "class": type(policy).__name__,
                    "fields": None,
                    "repr": repr(policy),
                }
            key = repr(sorted(blob.items(), key=lambda kv: kv[0]))
            index = index_of.get(key)
            if index is None:
                index = index_of[key] = len(blobs)
                blobs.append(blob)
            id_memo[id(policy)] = index
            return index

        if policies is not None:
            for policy in policies:
                blob_index(policy)
        provenance: List[List[Any]] = []
        tainted_segments = 0
        if rangemap is not None:
            try:
                segments = rangemap.to_segments()
            except Exception:
                segments = []
                self.record_errors += 1
            for start, stop, segment_policies in segments:
                if not segment_policies:
                    continue
                tainted_segments += 1
                if tainted_segments <= MAX_PROVENANCE_SEGMENTS:
                    provenance.append(
                        [start, stop, sorted(blob_index(p) for p in segment_policies)]
                    )
        entry["policies"] = blobs
        if provenance:
            entry["provenance"] = provenance
            if tainted_segments > len(provenance):
                entry["provenance_truncated"] = tainted_segments
        return entry

    # -- draining / queries ---------------------------------------------------

    def flush(self) -> None:
        """Block until every event captured so far is in the ledger."""
        with self._cond:
            while self._queue or self._busy:
                self._cond.notify_all()  # wake the writer if it missed one
                self._cond.wait(timeout=0.05)
        self.ledger.flush()

    def events(self, **filters: Any):
        """Stream recorded events, filtered — see :func:`repro.audit.query.events`.

        Flushes first so the view includes everything captured so far.
        """
        from .query import events as query_events
        self.flush()
        return query_events(self.ledger, **filters)

    def provenance_of(self, policy: Any):
        """The requests that exported data carrying ``policy`` — see
        :func:`repro.audit.query.provenance_of`."""
        from .query import provenance_of as query_provenance
        self.flush()
        return query_provenance(self.ledger, policy)

    def __repr__(self) -> str:
        return (
            f"AuditRecorder(recorded={self.events_recorded}, "
            f"dropped={self.dropped_events}, errors={self.record_errors})"
        )
