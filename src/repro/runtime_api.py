"""The fluent, environment-scoped RESIN runtime API.

:class:`Resin` is the single entry point applications use to talk to the
runtime.  It wraps one :class:`~repro.environment.Environment` and exposes
the Table-3 primitives (``policy_add`` / ``policy_get`` / filter objects)
behind a fluent facade whose state is *scoped to that environment* — nothing
a ``Resin`` instance does leaks into other environments in the process::

    resin = Resin()                                   # fresh environment
    pw = resin.taint("s3cret", PasswordPolicy("a@b.c"))
    pw = resin.policy(PasswordPolicy, "a@b.c").on("s3cret")   # equivalent

    resin.assertion("script-injection").install()     # this env only
    resin.assertion("sql-injection", strategy="structure").install()

    with resin.request(user="alice@b.c") as http:     # per-request channel
        http.write(page_html)                         # buffered; discarded
                                                      # if an assertion fires

Table-3 name mapping (see ``docs/API.md`` for the full table):

=====================================  =====================================
Table 3 / free function                ``Resin`` facade
=====================================  =====================================
``policy_add(d, p)``                   ``resin.taint(d, p)``
``policy_remove(d, p)``                ``resin.remove(d, p)``
``policy_get(d)``                      ``resin.policies(d)``
``untaint(d)``                         ``resin.declassify(d)``
``set_default_filter_factory(t, f)``   ``resin.set_default_filter(t, f)``
(free function removed)
``reset_default_filters()``            ``resin.reset_filters()``
(free function removed)
channel constructors                   ``resin.channel(kind, ...)``
``install_script_injection_assertion`` ``resin.assertion("script-injection")
                                       .install()``
=====================================  =====================================
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Optional, Type

from .core.api import (has_policy, policy_add, policy_get, policy_remove,
                       taint as _taint, untaint as _untaint)
from .core.exceptions import FilterError
from .core.filter import Filter
from .core.policy import Policy
from .core.policyset import PolicySet
from .core.registry import FilterRegistry
from .core.request_context import (RequestContext, current_request,
                                   stamp_request_id)
from .environment import Environment

__all__ = ["Resin", "BoundPolicy", "Assertion", "RequestScope"]


class BoundPolicy:
    """A policy class plus constructor arguments, ready to apply to data.

    Built by :meth:`Resin.policy`; call :meth:`on` to attach a fresh policy
    instance to a value (returning the annotated value), or :meth:`build` to
    get the policy object itself.
    """

    def __init__(self, policy_cls: Type[Policy], *args: Any, **kwargs: Any):
        if not (isinstance(policy_cls, type)
                and issubclass(policy_cls, Policy)):
            raise TypeError(
                f"expected a Policy subclass, got {policy_cls!r}")
        self.policy_cls = policy_cls
        self.args = args
        self.kwargs = kwargs

    def build(self) -> Policy:
        return self.policy_cls(*self.args, **self.kwargs)

    def on(self, value: Any, start: int = 0,
           stop: Optional[int] = None) -> Any:
        """Attach a fresh policy instance to ``value`` (optionally to the
        character/byte range ``[start, stop)``)."""
        return policy_add(value, self.build(), start, stop)

    def __repr__(self) -> str:
        return f"BoundPolicy({self.policy_cls.__name__})"


class Assertion:
    """One named data-flow assertion, scoped to a ``Resin`` environment.

    Built by :meth:`Resin.assertion`; :meth:`install` applies it.  Channel-
    scoped assertions (XSS, response splitting, …) take the target channel —
    or a :class:`~repro.web.app.WebApplication`, which stacks the filter on
    every response — via ``on=``/``install(target)``.
    """

    def __init__(self, resin: "Resin", name: str, **options: Any):
        if name not in _ASSERTIONS:
            raise KeyError(
                f"unknown assertion {name!r}; known: "
                f"{', '.join(sorted(_ASSERTIONS))}")
        self.resin = resin
        self.name = name
        self.options = dict(options)
        self._installed_registries: list = []

    def install(self, target: Any = None) -> "Assertion":
        """Apply the assertion to this environment (or to ``target``)."""
        registry = _ASSERTIONS[self.name](self.resin, target,
                                          dict(self.options))
        if registry is not None:
            self._installed_registries.append(registry)
        return self

    def uninstall(self) -> None:
        """Undo a registry-level assertion (currently: script-injection) on
        every registry this ``Assertion`` object installed it on."""
        if self.name != "script-injection":
            raise FilterError(
                f"assertion {self.name!r} stacks filters on channels and "
                "cannot be uninstalled generically")
        for registry in (self._installed_registries
                         or [self.resin.registry]):
            registry.reset("code")
        self._installed_registries = []


def _install_script_injection(resin: "Resin", target: Any,
                              options: Dict[str, Any]):
    from .security.assertions import install_script_injection_assertion
    env = target if target is not None else resin.env
    install_script_injection_assertion(env=env)
    for path in options.get("approve", ()):
        from .security.assertions import approve_code_file
        approve_code_file(env.fs, path)
    return env.registry


def _install_sql_guard(resin: "Resin", target: Any,
                       options: Dict[str, Any]) -> None:
    from .security.assertions import SQLGuardFilter
    db = target if target is not None else resin.env.db
    db.add_filter(SQLGuardFilter(options.get("strategy", "structure")))


def _install_sql_auto_sanitize(resin: "Resin", target: Any,
                               options: Dict[str, Any]) -> None:
    from .security.assertions import AutoSanitizingSQLFilter
    db = target if target is not None else resin.env.db
    db.add_filter(AutoSanitizingSQLFilter())


def _channel_filter_installer(filter_factory: Callable[[Dict[str, Any]], Filter]):
    def install(resin: "Resin", target: Any, options: Dict[str, Any]) -> None:
        target = target if target is not None else options.get("on")
        if target is None:
            raise FilterError(
                "this assertion guards a specific channel; pass the channel "
                "(or a WebApplication) to install()")
        flt = filter_factory(options)
        add_response_filter = getattr(target, "add_response_filter", None)
        if callable(add_response_filter):     # a WebApplication
            add_response_filter(flt)
        else:
            target.add_filter(flt)
    return install


def _xss_filter(options: Dict[str, Any]) -> Filter:
    from .security.assertions import HTMLGuardFilter, HTMLStructureGuardFilter
    if options.get("strategy", "sanitizer") == "structure":
        return HTMLStructureGuardFilter()
    return HTMLGuardFilter()


def _response_splitting_filter(options: Dict[str, Any]) -> Filter:
    from .security.assertions import ResponseSplittingFilter
    return ResponseSplittingFilter()


def _json_filter(options: Dict[str, Any]) -> Filter:
    from .security.assertions import JSONGuardFilter
    return JSONGuardFilter()


def _untrusted_input_filter(options: Dict[str, Any]) -> Filter:
    from .security.assertions import UntrustedInputFilter
    return UntrustedInputFilter(options.get("source", "socket"))


#: name -> installer(resin, target, options)
_ASSERTIONS: Dict[str, Callable[["Resin", Any, Dict[str, Any]], None]] = {
    "script-injection": _install_script_injection,
    "sql-injection": _install_sql_guard,
    "sql-auto-sanitize": _install_sql_auto_sanitize,
    "xss": _channel_filter_installer(_xss_filter),
    "response-splitting": _channel_filter_installer(_response_splitting_filter),
    "json-guard": _channel_filter_installer(_json_filter),
    "untrusted-input": _channel_filter_installer(_untrusted_input_filter),
}


class RequestScope:
    """Context manager for one request's boundary state.

    ``__enter__`` binds a fresh
    :class:`~repro.core.request_context.RequestContext` to the calling
    thread, creates an HTTP output channel for the request's user, pushes the
    user into the (request-local) filesystem context, and starts output
    buffering on the channel.  Filters installed on the environment's
    database while the scope is active join the request's overlay and pop on
    exit.  On clean exit the buffer is released to the browser; if an
    assertion (or anything else) raises, the buffered output is discarded —
    the partial page never crosses the boundary — and the exception
    propagates.
    """

    def __init__(self, resin: "Resin", user: Optional[str] = None,
                 buffered: bool = True, priv_chair: bool = False,
                 **context: Any):
        self.resin = resin
        self.user = user
        self.buffered = buffered
        self.priv_chair = priv_chair
        self.context = context
        self.http = None
        self.request_context: Optional[RequestContext] = None

    def __enter__(self):
        env = self.resin.env
        # Binding the RequestContext (a contextvar) replaces the old
        # save/mutate/restore dance on shared substrate attributes: nested
        # scopes — or application code that scopes its own requests — get
        # the enclosing request's state back automatically on exit, and
        # concurrent requests on other threads are never disturbed.
        self.request_context = RequestContext(
            env=env, user=self.user, priv_chair=self.priv_chair,
            request_id=stamp_request_id(env), **self.context)
        self.request_context.__enter__()
        try:
            self.http = env.http_channel(user=self.user,
                                         priv_chair=self.priv_chair,
                                         **self.context)
            self.request_context.http = self.http
            if self.buffered:
                self.http.start_buffering()
        except BaseException:
            self.request_context.__exit__(None, None, None)
            self.request_context = None
            raise
        return self.http

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            if self.buffered:
                if exc_type is None:
                    self.http.release_buffer()
                else:
                    self.http.discard_buffer()
        finally:
            if self.request_context is not None:
                self.request_context.__exit__(exc_type, exc, tb)
                self.request_context = None
        return False


class Resin:
    """The fluent, environment-scoped runtime facade.

    Wraps an :class:`~repro.environment.Environment` (creating a fresh one
    when none is given); every operation resolves through that environment's
    :class:`~repro.core.registry.FilterRegistry`, never through process-wide
    state.
    """

    def __init__(self, env: Optional[Environment] = None, **env_kwargs: Any):
        self.env = env if env is not None else Environment(**env_kwargs)

    # -- durable storage ---------------------------------------------------------

    @classmethod
    def open(cls, path: str, *, sync: str = "fsync", group_commit: bool = True,
             tolerant: bool = False, checkpoint_bytes: Optional[int] = None,
             audit: Optional[bool] = None,
             **env_kwargs: Any) -> "Resin":
        """Open (or create) a durable environment stored at ``path``.

        One line does the whole open-recover-resume cycle: build a fresh
        environment, load the newest snapshot under ``path``, replay the WAL
        tail (tolerating a torn final record), and attach the
        :class:`~repro.storage.durability.Durability` service so every
        subsequent table and filesystem mutation — with its policies — is
        logged::

            resin = Resin.open("/var/lib/myapp")
            resin.db.query("INSERT INTO ...")     # durable
            resin.durability.close()              # flush on shutdown

        ``tolerant=True`` loads records referencing unknown policy/filter
        classes as deny-by-default placeholders instead of failing recovery.

        ``audit`` controls the flow-provenance recorder: ``True`` opens
        (recovering) the audit ledger under ``<path>/audit``; ``None`` (the
        default) reopens it only if a previous run created one — so a store
        that was auditing resumes auditing after restart; ``False`` leaves
        audit off.
        """
        from .storage.durability import DEFAULT_CHECKPOINT_BYTES, Durability
        if checkpoint_bytes is None:
            checkpoint_bytes = DEFAULT_CHECKPOINT_BYTES
        resin = cls(**env_kwargs)
        Durability.open(resin.env, path, sync=sync, group_commit=group_commit,
                        checkpoint_bytes=checkpoint_bytes, tolerant=tolerant)
        audit_dir = os.path.join(path, "audit")
        if audit is True or (audit is None and os.path.isdir(audit_dir)):
            resin.enable_audit(audit_dir)
        return resin

    @property
    def durability(self):
        """The :class:`~repro.storage.durability.Durability` service attached
        to this environment, or ``None`` (sugar for
        ``resin.services.get("storage.durability")``)."""
        from .storage.durability import SERVICE_NAME
        return self.env.services.get(SERVICE_NAME)

    # -- audit / provenance ------------------------------------------------------

    @property
    def audit(self):
        """The :class:`~repro.audit.recorder.AuditRecorder` observing this
        environment, or ``None`` (sugar for
        ``resin.services.get("audit.recorder")``).  Query it after the fact::

            resin.audit.events(policy=PasswordPolicy, verdict="deny")
            resin.audit.provenance_of(password_policy)
        """
        from .audit.recorder import SERVICE_NAME
        return self.env.services.get(SERVICE_NAME)

    def enable_audit(self, path: Optional[str] = None,
                     **recorder_kwargs: Any):
        """Attach a flow-provenance recorder to this environment.

        With ``path``, events land in an append-only
        :class:`~repro.audit.ledger.AuditLedger` under that directory
        (recovered in place if it already exists); without, they stay in a
        bounded in-memory :class:`~repro.audit.ledger.MemoryLedger`.  From
        then on every export check, declassification and policy violation
        in this environment is recorded — observation only, verdicts never
        change.  Returns the recorder (also reachable as ``resin.audit``).
        """
        from .audit.ledger import AuditLedger, MemoryLedger
        from .audit.recorder import AuditRecorder
        existing = self.audit
        if existing is not None:
            return existing
        queue_limit = recorder_kwargs.pop("queue_limit", 4096)
        if path is not None:
            ledger = AuditLedger(path, **recorder_kwargs)
        else:
            ledger = MemoryLedger(**recorder_kwargs)
        return AuditRecorder(ledger, queue_limit=queue_limit).attach(self.env)

    # -- handy substrate accessors ----------------------------------------------

    @property
    def registry(self) -> FilterRegistry:
        return self.env.registry

    @property
    def fs(self):
        return self.env.fs

    @property
    def db(self):
        return self.env.db

    @property
    def mail(self):
        return self.env.mail

    @property
    def interpreter(self):
        return self.env.interpreter

    @property
    def services(self):
        """This environment's application-service registry
        (:class:`~repro.core.services.ServiceRegistry`)."""
        return self.env.services

    def service(self, name: str, default: Any = None) -> Any:
        """The application service ``name`` on this environment, or
        ``default`` — sugar for ``resin.services.get(name)``."""
        return self.env.services.get(name, default)

    def create_index(self, table: str, column: str, kind: str = "sorted",
                     name: Optional[str] = None):
        """Declare a secondary index on ``table.column`` — sugar for
        ``resin.db.create_index(...)``.  Durable engines WAL-log the
        definition and rebuild the index on recovery."""
        return self.env.db.create_index(table, column, kind, name)

    def set_policy_mode(self, mode: str) -> "Resin":
        """Switch the database between ``observe`` and ``enforce`` policy
        modes (see :data:`repro.channels.sqlchan.POLICY_MODES`); returns
        ``self`` for chaining."""
        self.env.db.set_policy_mode(mode)
        return self

    # -- taint / policy primitives (Table 3) ------------------------------------

    def taint(self, data: Any, *policies: Policy) -> Any:
        """Attach one or more policy objects to ``data`` (``policy_add``)."""
        return _taint(data, *policies)

    def remove(self, data: Any, policy: Policy) -> Any:
        """Remove ``policy`` from ``data``'s policy set (``policy_remove``)."""
        return policy_remove(data, policy)

    def policies(self, data: Any) -> PolicySet:
        """The policy set of ``data`` (``policy_get``)."""
        return policy_get(data)

    def has_policy(self, data: Any, policy_type,
                   *, every_char: bool = False) -> bool:
        return has_policy(data, policy_type, every_char=every_char)

    def declassify(self, data: Any) -> Any:
        """A plain, policy-free copy of ``data`` (``untaint``).  Only
        boundary code should call this.

        When an audit recorder is attached, every declassification is
        recorded with the policies being stripped and the taint provenance
        of the data — declassify is the one legal way secrets shed their
        protection, so it is exactly what forensics needs to see.
        """
        from .audit.recorder import recorder_for
        recorder = recorder_for(self.env)
        if recorder is not None:
            policies = policy_get(data)
            if policies:
                recorder.record("declassify", verdict="allow",
                                policies=policies,
                                rangemap=getattr(data, "rangemap", None))
        return _untaint(data)

    def policy(self, policy_cls: Type[Policy], *args: Any,
               **kwargs: Any) -> BoundPolicy:
        """Fluent policy application: ``resin.policy(PasswordPolicy,
        "a@b.c").on(password)``."""
        return BoundPolicy(policy_cls, *args, **kwargs)

    # -- channels ---------------------------------------------------------------

    def channel(self, kind: str, *args: Any, **kwargs: Any):
        """Create a channel of ``kind`` bound to this environment.

        ``kind`` is one of ``"http"``, ``"socket"``, ``"pipe"``, ``"email"``,
        ``"sql"``, ``"code"``; positional/keyword arguments match the
        corresponding channel constructor (e.g. the recipient address for
        ``"email"``, ``user=`` for ``"http"``).
        """
        env = self.env
        if kind == "http":
            return env.http_channel(*args, **kwargs)
        if kind == "socket":
            return env.socket(*args, **kwargs)
        if kind == "pipe":
            return env.pipe(*args, **kwargs)
        if kind == "email":
            from .channels.mail import EmailChannel
            return EmailChannel(*args, env=env, **kwargs)
        if kind == "sql":
            if args or kwargs:
                raise FilterError(
                    "channel('sql') returns this environment's shared "
                    "Database and takes no arguments; construct "
                    "repro.channels.sqlchan.Database(registry=...) directly "
                    "for a differently-configured connection")
            return env.db
        if kind == "code":
            return env.interpreter.new_channel(*args, **kwargs)
        raise FilterError(f"unknown channel kind {kind!r}")

    # -- default-filter registry (scoped) ---------------------------------------

    def set_default_filter(self, channel_type: str, factory) -> "Resin":
        """Scoped override of a default filter factory: affects only
        channels created through this environment."""
        self.registry.set_default_filter_factory(channel_type, factory)
        return self

    def reset_filters(self, channel_type: Optional[str] = None) -> "Resin":
        """Reset this environment's default-filter overrides."""
        self.registry.reset(channel_type)
        return self

    # -- assertions -------------------------------------------------------------

    def assertion(self, name: str, **options: Any) -> Assertion:
        """A named assertion: ``resin.assertion("script-injection")
        .install()``.  See :data:`_ASSERTIONS` for the catalogue."""
        return Assertion(self, name, **options)

    def approve_code(self, path: str,
                     approved_by: str = "installer") -> "Resin":
        """Tag a stored file as approved code (Figure 6's
        ``make_file_executable``)."""
        from .security.assertions import approve_code_file
        approve_code_file(self.env.fs, path, approved_by)
        return self

    # -- request scoping --------------------------------------------------------

    def request(self, user: Optional[str] = None, *, buffered: bool = True,
                priv_chair: bool = False, **context: Any) -> RequestScope:
        """Scope one request: ``with resin.request(user="alice") as http:``.

        Yields a fresh, buffered HTTP output channel and propagates the user
        into the filesystem request context for the duration of the block.
        """
        return RequestScope(self, user=user, buffered=buffered,
                            priv_chair=priv_chair, **context)

    @property
    def current_request(self) -> Optional[RequestContext]:
        """The :class:`~repro.core.request_context.RequestContext` bound to
        the calling thread for *this* environment, or ``None``."""
        rctx = current_request()
        if rctx is not None and rctx.env is self.env:
            return rctx
        return None

    def app(self, name: str = "app"):
        """A :class:`~repro.web.app.WebApplication` bound to this
        environment — the front door of the fluent API::

            app = resin.app("wiki")

            @app.route("/page/<path:name>", methods=["GET"])
            async def page(request, response, name):
                ...
        """
        from .web.app import WebApplication
        return WebApplication(self.env, name=name)

    def dispatcher(self, app, workers: int = 4):
        """A concurrent :class:`~repro.server.dispatcher.Dispatcher` serving
        ``app`` (a :class:`~repro.web.app.WebApplication`) from this
        environment with ``workers`` threads."""
        from .server.dispatcher import Dispatcher
        return Dispatcher(app, workers=workers, resin=self)

    def async_dispatcher(self, app, workers: int = 4,
                         max_in_flight: Optional[int] = None):
        """An :class:`~repro.server.async_dispatcher.AsyncDispatcher`
        serving ``app`` from this environment on an asyncio event loop, with
        ``workers`` executor threads and at most ``max_in_flight`` admitted
        requests (backpressure)."""
        from .server.async_dispatcher import AsyncDispatcher
        return AsyncDispatcher(app, workers=workers,
                               max_in_flight=max_in_flight, resin=self)

    def serve_async(self, app, host: str = "127.0.0.1", port: int = 0,
                    durable: Optional[str] = None, **options: Any):
        """A real HTTP/1.1 socket server
        (:class:`~repro.server.http.HTTPServer`) in front of ``app``, not
        yet bound — ``async with resin.serve_async(app) as server:`` binds
        the listening socket and drains it on exit.  ``options`` are the
        ``HTTPServer`` keyword arguments (workers, timeouts, parser limits,
        ``user_header`` for trusted harnesses, ...).

        ``durable=<path>`` attaches durable storage at ``path`` (recovering
        any existing state) before serving — note that recovery mutates the
        environment, so pass it before the app seeds demo data, or build the
        app on ``Resin.open(path)`` instead for full control."""
        self._ensure_durable(durable)
        from .server.http import HTTPServer
        options.setdefault("resin", self)
        return HTTPServer(app, host=host, port=port, **options)

    def serve(self, app, host: str = "127.0.0.1", port: int = 0,
              durable: Optional[str] = None, **options: Any):
        """Serve ``app`` over a loopback (or given) socket from a
        background event-loop thread, for synchronous callers::

            with resin.serve(app, durable="/var/lib/app") as handle:
                conn = http.client.HTTPConnection("127.0.0.1", handle.port)

        Returns a started :class:`~repro.server.http.ServerHandle`; leaving
        the ``with`` block (or calling ``handle.close()``) drains the
        server gracefully.  ``durable=<path>`` attaches durable storage at
        ``path`` (see :meth:`serve_async`)."""
        from .server.http.server import ServerHandle
        return ServerHandle(self.serve_async(app, host=host, port=port,
                                             durable=durable,
                                             **options)).start()

    def _ensure_durable(self, path: Optional[str]) -> None:
        if path is None:
            return
        store = self.durability
        if store is not None:
            if store.directory != path:
                raise FilterError(
                    f"environment already durable at {store.directory!r}; "
                    f"cannot also open {path!r}")
            return
        from .storage.durability import Durability
        Durability.open(self.env, path)

    def __repr__(self) -> str:
        return f"Resin(registry={self.registry!r})"
