#!/usr/bin/env python3
"""Quickstart, persistence variant: policies that survive a restart.

The password assertion of ``examples/quickstart.py``, but on a *durable*
environment (Section 3.4.1 of the paper: persistent policies follow data
to stable storage and back).  ``Resin.open(path)`` attaches a write-ahead
log + snapshot store under ``path``; every table and filesystem mutation is
logged with its policies, and reopening the same path replays the store so
the recovered data carries exactly the policies it was stored with — the
disclosure check blocks the same flows after the "restart" as before it.

Run with:  python examples/quickstart_durable.py
"""

import shutil
import tempfile

from repro import DisclosureViolation, PasswordPolicy, Resin


def first_run(store: str) -> None:
    """Set the password once; let RESIN persist it, policy and all."""
    resin = Resin.open(store)

    password = resin.policy(
        PasswordPolicy, "alice@example.org").on("correct-horse-battery-staple")

    resin.db.execute_unchecked(
        "CREATE TABLE users (email TEXT, password TEXT)")
    resin.db.query("INSERT INTO users (email, password) VALUES "
                   "('alice@example.org', '" + password + "')")
    resin.fs.mkdir("/backup")
    resin.fs.write_text("/backup/alice.txt", password)

    print("first run: stored password with policies",
          resin.policies(password))

    # A snapshot compacts the log; recovery also works from log alone.
    resin.durability.checkpoint()
    resin.durability.close()


def after_restart(store: str) -> None:
    """A fresh process: recover the store and watch the policy still bite."""
    resin = Resin.open(store)

    row = resin.db.query("SELECT password FROM users").rows[0]
    print("recovered from table:", resin.policies(row["password"]))
    backup = resin.fs.read_text("/backup/alice.txt")
    print("recovered from file: ", resin.policies(backup))

    # Allowed flow: e-mail the password to its owner.
    message = resin.mail.send(to="alice@example.org",
                              subject="Password reminder",
                              body="Your password is " + row["password"])
    print("mail delivered to", message.to)

    # Forbidden flow: any other user's browser — still blocked, because the
    # PasswordPolicy came back from disk attached to the data.
    with resin.request(user="mallory@example.org") as adversary_page:
        try:
            adversary_page.write("debug dump: " + row["password"])
        except DisclosureViolation as exc:
            print("blocked after restart:", exc)
    print("adversary saw:", repr(adversary_page.body()))

    resin.durability.close()


def main() -> None:
    store = tempfile.mkdtemp(prefix="resin-quickstart-")
    try:
        first_run(store)
        after_restart(store)
    finally:
        shutil.rmtree(store)


if __name__ == "__main__":
    main()
