#!/usr/bin/env python3
"""SQL injection and cross-site scripting assertions (Section 5.3).

User input is marked ``UntrustedData`` where it enters the application; the
sanitizers add ``SQLSanitized`` / ``HTMLSanitized`` markers; filter objects
on the SQL connection and the HTTP output refuse to let untrusted,
unsanitized characters reach query structure or HTML.

Run with:  python examples/sql_injection_and_xss.py
"""

from repro import InjectionViolation, concat
from repro.environment import Environment
from repro.security.assertions import (HTMLGuardFilter, SQLGuardFilter,
                                       mark_untrusted)
from repro.web.sanitize import html_escape, sql_quote


def main() -> None:
    env = Environment()
    env.db.execute_unchecked(
        "CREATE TABLE comments (author TEXT, body TEXT)")
    env.db.add_filter(SQLGuardFilter("structure"))

    # Everything the browser sends is untrusted.
    author = mark_untrusted("bobby'); DELETE FROM comments --", "http-param")
    body = mark_untrusted("<script>steal(document.cookie)</script>",
                          "http-param")

    print("1. Forgot to quote -> the SQL guard rejects the query:")
    try:
        env.db.query(concat(
            "INSERT INTO comments (author, body) VALUES ('", author, "', '",
            body, "')"))
    except InjectionViolation as exc:
        print("   blocked:", exc)

    print("2. Properly quoted input is stored fine:")
    env.db.query(concat(
        "INSERT INTO comments (author, body) VALUES ('", sql_quote(author),
        "', '", sql_quote(body), "')"))
    print("   rows:", len(env.db.query("SELECT author FROM comments").rows))

    print("3. Echoing the stored comment without escaping trips the XSS "
          "assertion:")
    page = env.http_channel(user="visitor")
    page.add_filter(HTMLGuardFilter())
    stored = env.db.query("SELECT author, body FROM comments").rows[0]
    try:
        page.write(concat("<div class='comment'>", stored["body"], "</div>"))
    except InjectionViolation as exc:
        print("   blocked:", exc)

    print("4. Escaped output is allowed:")
    page.write(concat("<div class='comment'>", html_escape(stored["body"]),
                      "</div>"))
    print("   body:", page.body())


if __name__ == "__main__":
    main()
