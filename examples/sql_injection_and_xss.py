#!/usr/bin/env python3
"""SQL injection and cross-site scripting assertions (Section 5.3).

User input is marked ``UntrustedData`` where it enters the application; the
sanitizers add ``SQLSanitized`` / ``HTMLSanitized`` markers; filter objects
on the SQL connection and the HTTP output refuse to let untrusted,
unsanitized characters reach query structure or HTML.

Both assertions are installed through the environment-scoped ``Resin``
facade: the SQL guard goes on this environment's database connection, the
XSS guard on the per-request HTTP channel.

Run with:  python examples/sql_injection_and_xss.py
"""

from repro import InjectionViolation, Resin, UntrustedData, concat
from repro.web.sanitize import html_escape, sql_quote


def main() -> None:
    resin = Resin()
    resin.db.execute_unchecked(
        "CREATE TABLE comments (author TEXT, body TEXT)")
    resin.assertion("sql-injection", strategy="structure").install()

    # Everything the browser sends is untrusted.
    author = resin.taint("bobby'); DELETE FROM comments --",
                         UntrustedData("http-param"))
    body = resin.taint("<script>steal(document.cookie)</script>",
                       UntrustedData("http-param"))

    print("1. Forgot to quote -> the SQL guard rejects the query:")
    try:
        resin.db.query(concat(
            "INSERT INTO comments (author, body) VALUES ('", author, "', '",
            body, "')"))
    except InjectionViolation as exc:
        print("   blocked:", exc)

    print("2. Properly quoted input is stored fine:")
    resin.db.query(concat(
        "INSERT INTO comments (author, body) VALUES ('", sql_quote(author),
        "', '", sql_quote(body), "')"))
    print("   rows:", len(resin.db.query("SELECT author FROM comments").rows))

    print("3. Echoing the stored comment without escaping trips the XSS "
          "assertion:")
    page = resin.channel("http", user="visitor")
    resin.assertion("xss").install(page)
    stored = resin.db.query("SELECT author, body FROM comments").rows[0]
    try:
        page.write(concat("<div class='comment'>", stored["body"], "</div>"))
    except InjectionViolation as exc:
        print("   blocked:", exc)

    print("4. Escaped output is allowed:")
    page.write(concat("<div class='comment'>", html_escape(stored["body"]),
                      "</div>"))
    print("   body:", page.body())


if __name__ == "__main__":
    main()
