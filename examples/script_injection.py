#!/usr/bin/env python3
"""Server-side script injection prevention (Section 5.2, Figure 6).

At install time, every legitimate script is tagged with a persistent
``CodeApproval`` policy.  The interpreter's input filter is replaced so that
only approved code may run.  An uploaded file never has the policy, so the
attack fails whether the adversary reaches it via include, eval, or a direct
HTTP request.

The assertion is installed on the *application's own environment* (its
filter registry), so other environments in the same process — other tenants,
other examples, the test suite — are unaffected and no global teardown is
needed.

Run with:  python examples/script_injection.py
"""

from repro import ScriptInjectionViolation
from repro.apps.scriptapps import UploadApp
from repro.environment import Environment


def main() -> None:
    app = UploadApp("photo-gallery", Environment(), use_resin=True)

    print("Running the application's own (approved) front page:")
    app.run_index()
    print("  ok")

    print("An unprotected app in the same process is not affected:")
    bystander = UploadApp("unrelated-app", Environment(), use_resin=False)
    bystander.run_index()
    print("  ok (its environment kept the permissive default filter)")

    print("Adversary uploads evil.php and requests it:")
    app.upload("mallory", "evil.php",
               "globals_dict['pwned'] = True\n"
               "output('<h1>owned</h1>')")
    try:
        app.http_get("/photo-gallery/uploads/evil.php")
    except ScriptInjectionViolation as exc:
        print("  blocked:", exc)
    print("  attacker code executed?",
          bool(app.env.interpreter.globals.get("pwned", False)))


if __name__ == "__main__":
    main()
