#!/usr/bin/env python3
"""MoinMoin-style access control with an 8-line data flow assertion.

The wiki attaches a ``PagePolicy`` (carrying the page's ACL) to the page
body when it is saved (Figure 5 of the paper).  The policy is serialized
into the file's extended attributes, survives the round trip through the
filesystem, and is enforced at the HTTP boundary — so even *buggy* code
paths that forget the ACL check (the rst include directive, the raw
download action) cannot leak the page.

Run with:  python examples/wiki_access_control.py
"""

from repro import AccessDenied
from repro.apps.moinmoin import MoinMoin
from repro.environment import Environment


def main() -> None:
    wiki = MoinMoin(Environment(), use_resin=True)

    # Alice writes a page only she may read.
    wiki.update_body("SecretPlans",
                     "#acl alice:read,write\nThe secret plans: launch at dawn.",
                     user="alice")
    # Mallory creates a page that *includes* Alice's page — the include
    # directive forgets to check the included page's ACL (CVE-2008-6548).
    wiki.update_body("MalloryPage", "Look here: {{include:SecretPlans}}",
                     user="mallory")

    print("Alice reads her page:")
    print(" ", wiki.view_page("SecretPlans", "alice").body().splitlines()[-1])

    print("Mallory tries the include-directive bug:")
    try:
        wiki.view_page("MalloryPage", "mallory")
    except AccessDenied as exc:
        print("  blocked:", exc)

    print("Mallory tries the raw-download bug:")
    try:
        wiki.raw_action("SecretPlans", "mallory")
    except AccessDenied as exc:
        print("  blocked:", exc)

    print("Mallory tries to overwrite Alice's page on disk:")
    try:
        wiki.overwrite_revision("SecretPlans", 1, "defaced", user="mallory")
    except AccessDenied as exc:
        print("  blocked:", exc)


if __name__ == "__main__":
    main()
