#!/usr/bin/env python3
"""Quickstart: the HotCRP password assertion of Figure 2, via the ``Resin``
facade.

A password is annotated with a ``PasswordPolicy`` once, where it is set.
RESIN then tracks the policy through string operations, e-mail composition
and the database, and checks it wherever the data tries to leave the system:
e-mailing the password to its owner is allowed, showing it to another user's
browser is not — no matter which code path tried to do so.

``Resin`` wraps one environment; everything it does (taint, channels,
assertions) is scoped to that environment, so many of these can run
concurrently in one process.  HTTP boundaries are created per request with
``resin.request(...)`` / ``env.http_channel(...)`` — the canonical pattern —
rather than shared across scenarios.

Run with:  python examples/quickstart.py
"""

from repro import DisclosureViolation, PasswordPolicy, Resin


def main() -> None:
    resin = Resin()

    # --- the assertion: one line where the password is first set -----------
    password = resin.policy(
        PasswordPolicy, "alice@example.org").on("correct-horse-battery-staple")
    print("password policies:", resin.policies(password))

    # --- the policy follows the data --------------------------------------
    reminder = "Dear Alice,\n\nYour password is " + password + "\n"
    print("policies on composed e-mail:", resin.policies(reminder))
    print("characters that carry the policy:",
          str(reminder)[33:33 + len("correct-horse-battery-staple")])

    # --- allowed flow: e-mail to the account owner ------------------------
    message = resin.mail.send(to="alice@example.org",
                              subject="Password reminder", body=reminder)
    print("mail delivered to", message.to)

    # --- the same flow through persistent storage -------------------------
    resin.db.execute_unchecked(
        "CREATE TABLE users (email TEXT, password TEXT)")
    resin.db.query("INSERT INTO users (email, password) VALUES "
                   "('alice@example.org', '" + password + "')")
    row = resin.db.query("SELECT password FROM users").rows[0]
    print("policies after a database round-trip:",
          resin.policies(row["password"]))

    # --- forbidden flow: any other user's browser --------------------------
    with resin.request(user="mallory@example.org") as adversary_page:
        try:
            adversary_page.write("debug dump: " + row["password"])
        except DisclosureViolation as exc:
            print("blocked:", exc)
    print("adversary saw:", repr(adversary_page.body()))

    # --- the same boundary behind the routing API --------------------------
    # resin.app() builds a routed WebApplication; handlers take typed route
    # parameters, async def handlers are awaited natively on the event loop
    # by AsyncDispatcher, and the assertion fires at the same HTTP boundary.
    import asyncio

    app = resin.app("quickstart")

    @app.middleware
    def resolve_chair(request, response):
        # middleware replaces the old before_request hooks: resolve the
        # principal once, every route sees the result
        if request.user == "chair@example.org":
            response.set_user(request.user, priv_chair=True)

    @app.route("/password/<owner>")
    async def show_password(request, response, owner):
        await asyncio.sleep(0)            # a pretend backend call
        record = resin.db.query("SELECT password FROM users").rows[0]
        return "the password is " + record["password"]

    async def serve() -> None:
        from repro.web.request import Request
        async with resin.async_dispatcher(app, workers=2) as server:
            chair_task = server.submit(
                Request("/password/alice", user="chair@example.org"))
            print("the chair sees:", (await chair_task).body())
            mallory_task = server.submit(
                Request("/password/alice", user="mallory@example.org"))
            try:
                await mallory_task
            except DisclosureViolation as exc:
                print("blocked on the loop:", exc)

    asyncio.run(serve())

    # --- the same application on a real socket ------------------------------
    # resin.serve() binds an HTTP/1.1 listener (on a background thread) in
    # front of the async dispatcher; the page crosses the very same channel
    # boundary, now reached through an actual TCP connection.
    import http.client

    with resin.serve(app, user_header="x-resin-user") as handle:
        conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=5)
        try:
            conn.request("GET", "/password/alice",
                         headers={"X-Resin-User": "chair@example.org"})
            page = conn.getresponse()
            print("over the socket, the chair sees:",
                  page.read().decode("utf-8"))
            conn.request("GET", "/password/alice",
                         headers={"X-Resin-User": "mallory@example.org"})
            denied = conn.getresponse()
            print("over the socket, mallory gets:", denied.status,
                  denied.read().decode("utf-8").strip())
        finally:
            conn.close()


if __name__ == "__main__":
    main()
