#!/usr/bin/env python3
"""Quickstart: the HotCRP password assertion of Figure 2.

A password is annotated with a ``PasswordPolicy`` once, where it is set.
RESIN then tracks the policy through string operations, e-mail composition
and the database, and checks it wherever the data tries to leave the system:
e-mailing the password to its owner is allowed, showing it to another user's
browser is not — no matter which code path tried to do so.

Run with:  python examples/quickstart.py
"""

from repro import (DisclosureViolation, PasswordPolicy, policy_add,
                   policy_get)
from repro.environment import Environment


def main() -> None:
    env = Environment()

    # --- the assertion: one line where the password is first set -----------
    password = policy_add("correct-horse-battery-staple",
                          PasswordPolicy("alice@example.org"))
    print("password policies:", policy_get(password))

    # --- the policy follows the data --------------------------------------
    reminder = "Dear Alice,\n\nYour password is " + password + "\n"
    print("policies on composed e-mail:", policy_get(reminder))
    print("characters that carry the policy:",
          str(reminder)[33:33 + len("correct-horse-battery-staple")])

    # --- allowed flow: e-mail to the account owner ------------------------
    message = env.mail.send(to="alice@example.org",
                            subject="Password reminder", body=reminder)
    print("mail delivered to", message.to)

    # --- the same flow through persistent storage -------------------------
    env.db.execute_unchecked("CREATE TABLE users (email TEXT, password TEXT)")
    env.db.query("INSERT INTO users (email, password) VALUES "
                 "('alice@example.org', '" + password + "')")
    row = env.db.query("SELECT password FROM users").rows[0]
    print("policies after a database round-trip:", policy_get(row["password"]))

    # --- forbidden flow: any other user's browser --------------------------
    adversary_page = env.http_channel(user="mallory@example.org")
    try:
        adversary_page.write("debug dump: " + row["password"])
    except DisclosureViolation as exc:
        print("blocked:", exc)
    print("adversary saw:", repr(adversary_page.body()))


if __name__ == "__main__":
    main()
