#!/usr/bin/env python3
"""End-to-end HotCRP walkthrough: the paper's running example.

Covers the password-reminder disclosure (Data Flow Assertion 5), persistent
policies through the SQL database, and the output-buffering pattern that
turns the author-anonymity assertion into the application's access check
(Section 5.5).

Run with:  python examples/hotcrp_walkthrough.py
"""

from repro import DisclosureViolation
from repro.apps.hotcrp import HotCRP
from repro.environment import Environment
from repro.web.request import Request


def main() -> None:
    site = HotCRP(Environment(), use_resin=True)
    site.register_user("victim@example.org", "victim-password")
    site.register_user("pc@example.org", "pc-password", is_pc=True)
    site.register_user("chair@example.org", "chair-password", is_pc=True,
                       priv_chair=True)
    site.submit_paper(7, "A Paper Under Review",
                      "This abstract is visible to the PC. " * 10,
                      ["victim@example.org"], anonymous=True)

    print("1. Normal password reminder goes out by e-mail:")
    response = site.env.http_channel(user="victim@example.org")
    print("  ", site.send_password_reminder("victim@example.org", response))
    print("   outbox:", site.env.mail.outbox)

    print("2. The email-preview + reminder combination is blocked:")
    site.email_preview_mode = True
    adversary = site.env.http_channel(user="adversary@example.org")
    try:
        site.send_password_reminder("victim@example.org", adversary)
    except DisclosureViolation as exc:
        print("   blocked:", exc)
    print("   adversary's page contains the password?",
          "victim-password" in adversary.body())

    print("3. Paper page for a PC member (anonymous author list):")
    page = site.paper_page(7, "pc@example.org").body()
    print("   title shown:", "A Paper Under Review" in page)
    print("   author hidden:", "victim@example.org" not in page,
          "| shown as:", "Anonymous" in page and "Anonymous")

    print("4. The same page for the program chair shows the authors:")
    page = site.paper_page(7, "chair@example.org").body()
    print("   authors visible:", "victim@example.org" in page)

    print("5. The same flows through the routed web front end:")
    # Every HotCRP screen is also a method-aware route on site.web
    # (a repro.web.app.WebApplication built with resin.app); the paper
    # id is a typed <int:...> route parameter and the principal is
    # resolved by a request-phase middleware.
    page = site.web.handle(
        Request("/paper/7", user="pc@example.org")).body()
    print("   GET /paper/7 as PC member, author hidden:",
          "victim@example.org" not in page)
    print("   GET /paper/oops ->",
          site.web.handle(Request("/paper/oops",
                                  user="pc@example.org")).status,
          "(converter failure is a 404)")
    print("   DELETE /paper/7 ->",
          site.web.handle(Request("/paper/7", method="DELETE",
                                  user="pc@example.org")).status,
          "(method-aware routing: 405, not 404)")
    site.email_preview_mode = False
    reminder = site.web.handle(
        Request("/password/reminder", method="POST",
                params={"email": "victim@example.org"},
                user="victim@example.org"))
    print("   POST /password/reminder ->", reminder.status,
          dict(reminder.headers).get("X-Reminder"))

    print("6. The same site on a real HTTP/1.1 socket:")
    # HTTPServer puts a loopback listener in front of the same routed
    # application; the pages below travel over an actual TCP connection
    # and cross the same channel boundary, assertions included.
    import http.client

    from repro.server.http import HTTPServer, ServerHandle

    server = HTTPServer(site.web, user_header="x-resin-user")
    with ServerHandle(server).start() as handle:
        conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                          timeout=5)
        try:
            conn.request("GET", "/paper/7",
                         headers={"X-Resin-User": "pc@example.org"})
            page = conn.getresponse().read().decode("utf-8")
            print("   GET /paper/7 over the socket, author hidden:",
                  "victim@example.org" not in page)
            conn.request("GET", "/paper/7",
                         headers={"X-Resin-User": "chair@example.org"})
            page = conn.getresponse().read().decode("utf-8")
            print("   ... and for the chair, authors visible:",
                  "victim@example.org" in page)
        finally:
            conn.close()


if __name__ == "__main__":
    main()
