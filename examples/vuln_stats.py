#!/usr/bin/env python3
"""Reprint the motivation statistics (Tables 1 and 2 of the paper).

Run with:  python examples/vuln_stats.py
"""

from repro.security import vulndb


def main() -> None:
    print("Table 1: top CVE security vulnerabilities of 2008")
    print(f"{'Vulnerability':32} {'Count':>8} {'Percentage':>11}")
    for category, count, percent in vulndb.cve_2008_table():
        print(f"{category:32} {count:>8} {percent:>10.1f}%")
    print(f"{'Total':32} {vulndb.cve_2008_total():>8} {100.0:>10.1f}%")
    print()
    print("Fraction of 2008 CVEs in classes RESIN assertions address: "
          f"{vulndb.addressable_fraction():.1%}")
    print()
    print("Table 2: top Web site vulnerabilities of 2007 (WASC survey)")
    print(f"{'Vulnerability':32} {'Vulnerable sites':>17}")
    for category, percent in vulndb.web_survey_table():
        print(f"{category:32} {percent:>16.1f}%")


if __name__ == "__main__":
    main()
