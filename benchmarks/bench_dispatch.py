"""Dispatcher throughput benchmark: requests/sec at 1, 4 and 16 workers.

Each request runs a real RESIN page path (policy-persisting SQL read, taint
propagation, buffered HTTP write) plus a small simulated backend wait — the
regime a web deployment lives in.  Per-worker-count results land in their own
benchmark group::

    pytest benchmarks/bench_dispatch.py --benchmark-only \
        --benchmark-group-by=group --benchmark-columns=min,mean,ops

The acceptance bar for the concurrent dispatcher is >2x requests/sec at 4
workers vs 1; ``extra_info["requests_per_sec"]`` records the measured rate
for each run.
"""

import time
import pytest
from repro.environment import Environment
from repro.server.dispatcher import Dispatcher
from repro.tracking.propagation import concat
from repro.web.app import WebApplication
from repro.web.request import Request
from repro.web.sanitize import html_escape, sql_quote

#: Requests per measured batch.
BATCH = 32

#: Simulated per-request backend latency (lock-free wait, like a downstream
#: service call) — what a thread pool overlaps.  It must dominate the
#: page's CPU cost: pure-Python taint propagation holds the GIL, so only the
#: I/O share of a request parallelizes across threads.
BACKEND_WAIT = 0.010


def _build_app():
    env = Environment()
    env.db.execute_unchecked(
        "CREATE TABLE pages (id INTEGER, title TEXT, body TEXT)")
    for page_id in range(8):
        env.db.query(concat(
            "INSERT INTO pages (id, title, body) VALUES (",
            str(page_id), ", 'title ", str(page_id), "', '",
            sql_quote("lorem ipsum dolor sit amet "), "')"))
    app = WebApplication(env, "bench")

    @app.route("/page")
    def page(request, response):
        time.sleep(BACKEND_WAIT)
        page_id = int(request.param("id", 0)) % 8
        row = env.db.query(
            f"SELECT title, body FROM pages WHERE id = {page_id}").rows[0]
        response.write("<h1>")
        response.write(html_escape(row["title"]))
        response.write("</h1><div>")
        response.write(html_escape(row["body"]))
        response.write(f"</div><p>for {request.user}</p>")

    return app


@pytest.fixture(scope="module")
def app():
    return _build_app()


@pytest.mark.parametrize("workers", [1, 4, 16])
def test_dispatch_throughput(benchmark, app, workers):
    benchmark.group = f"dispatch-{workers}-workers"
    requests = [Request("/page", params={"id": str(i)},
                        user=f"user-{i}@example.org") for i in range(BATCH)]

    with Dispatcher(app, workers=workers) as server:
        def round_trip():
            responses = server.dispatch_all(requests)
            assert all("lorem" in r.body() for r in responses)

        benchmark(round_trip)

    seconds_per_batch = benchmark.stats.stats.mean
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["requests_per_sec"] = round(
        BATCH / seconds_per_batch, 1)


def test_four_workers_double_throughput(app):
    """The ISSUE acceptance criterion, standalone (no --benchmark-only
    needed): 4 workers serve >2x the requests/sec of 1 worker."""
    requests = [Request("/page", params={"id": str(i)}, user=f"u{i}")
                for i in range(BATCH)]

    def requests_per_sec(workers):
        with Dispatcher(app, workers=workers) as server:
            server.dispatch_all(requests)        # warm the pool
            start = time.perf_counter()
            server.dispatch_all(requests)
            elapsed = time.perf_counter() - start
        return BATCH / elapsed

    serial = requests_per_sec(1)
    parallel = requests_per_sec(4)
    assert parallel > 2 * serial, (
        f"expected >2x scaling, got {parallel / serial:.2f}x "
        f"({serial:.0f} -> {parallel:.0f} req/s)")
