"""Benchmark fixtures."""

import pytest

from repro.core.registry import default_registry


@pytest.fixture(autouse=True)
def _reset_global_default_filters():
    default_registry().reset()
    yield
    default_registry().reset()
