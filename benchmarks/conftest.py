"""Benchmark fixtures."""

import pytest

from repro.core.runtime import reset_default_filters


@pytest.fixture(autouse=True)
def _reset_global_default_filters():
    reset_default_filters()
    yield
    reset_default_filters()
