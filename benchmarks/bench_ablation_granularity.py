"""Experiment E6 (ablation): character-level vs whole-string tracking.

Section 3.4 argues for character-level tracking: when data with different
policies is combined in one string, only the characters that actually came
from the sensitive datum should carry its policy.  The ablation composes the
HotCRP password-reminder e-mail both ways and reports

* how many characters of the message end up carrying the password policy,
* whether the surrounding boilerplate can still be exported freely, and
* the time cost of the two strategies.
"""

import pytest

from repro.core.api import policy_add, policy_get
from repro.core.runtime import check_export
from repro.core.exceptions import PolicyViolation
from repro.policies import PasswordPolicy
from repro.tracking.propagation import concat, spread_policies
from repro.tracking.tainted_str import TaintedStr

PASSWORD = "correct-horse-battery-staple"
OWNER = "owner@example.org"


def compose_char_level():
    """Character-level tracking (what RESIN does)."""
    password = policy_add(PASSWORD, PasswordPolicy(OWNER))
    return concat("Dear user,\n\nYour password is: ", password,
                  "\n\nRegards, the submission site\n")


def compose_whole_string():
    """Whole-string tracking (the ablated design): the policy of any operand
    spreads over the entire result."""
    password = policy_add(PASSWORD, PasswordPolicy(OWNER))
    message = ("Dear user,\n\nYour password is: " + str(password)
               + "\n\nRegards, the submission site\n")
    return spread_policies(message, policy_get(password))


def _tainted_chars(message: TaintedStr) -> int:
    return sum(1 for i in range(len(message))
               if message.policies_at(i).has_type(PasswordPolicy))


@pytest.mark.parametrize("strategy,composer", [
    ("char-level", compose_char_level),
    ("whole-string", compose_whole_string),
])
def test_granularity_ablation(benchmark, strategy, composer, capsys):
    benchmark.group = "ablation:granularity"
    message = benchmark(composer)

    tainted = _tainted_chars(message)
    boilerplate = message[:10]          # "Dear user," — no password chars
    try:
        check_export(boilerplate, {"type": "http", "user": "helpdesk"})
        boilerplate_exportable = True
    except PolicyViolation:
        boilerplate_exportable = False

    benchmark.extra_info["policy_carrying_chars"] = tainted
    benchmark.extra_info["message_chars"] = len(message)
    benchmark.extra_info["boilerplate_exportable"] = boilerplate_exportable

    with capsys.disabled():
        print(f"\n[{strategy:12}] {tainted}/{len(message)} characters carry "
              f"the password policy; boilerplate exportable: "
              f"{boilerplate_exportable}")

    if strategy == "char-level":
        # Only the password itself is restricted (Section 3.4's claim).
        assert tainted == len(PASSWORD)
        assert boilerplate_exportable
    else:
        # The ablated design over-taints: the whole message is restricted.
        assert tainted == len(message)
        assert not boilerplate_exportable
