"""Filesystem lock-granularity benchmark: per-subtree scaling.

Concurrent write transactions hold their directory's subtree lock across a
read-modify-write with a simulated storage latency inside the critical
section.  Spread over four disjoint directories the transactions overlap
(per-subtree locks); aimed at one shared directory they serialize — which is
what the old single ``ResinFS`` lock did to *every* workload.  The
acceptance bar is >1.5x req/s for disjoint subtrees at 4 workers
(``test_disjoint_subtrees_scale_vs_single_lock``, run standalone in CI).

Run with::

    pytest benchmarks/bench_fs_contention.py --benchmark-only \
        --benchmark-group-by=group --benchmark-columns=min,mean,ops
"""

import time

import pytest

from repro.environment import Environment
from repro.server.dispatcher import Dispatcher
from repro.web.app import WebApplication
from repro.web.request import Request

#: Requests per measured batch.
BATCH = 32

#: Simulated storage latency *inside* a write transaction's critical
#: section — the time the request holds its subtree's lock.
TXN_HOLD = 0.005

#: Disjoint directories for the contention workload.
SUBTREES = 4


def _build_write_app():
    env = Environment()
    for index in range(SUBTREES):
        env.fs.mkdir(f"/data/d{index}", parents=True)
        env.fs.write_text(f"/data/d{index}/counter", "0")
    app = WebApplication(env, "bench-fs-writes")

    @app.route("/bump")
    def bump(request, response):
        path = f"/data/d{int(request.param('dir', 0))}/counter"
        # The per-subtree critical section: read, wait on (simulated)
        # storage, write back.  Requests under different directories hold
        # different locks.
        with env.fs.transaction(path):
            value = int(str(env.fs.read_text(path)))
            time.sleep(TXN_HOLD)
            env.fs.write_text(path, str(value + 1))
        response.write(f"{path} bumped")

    return app


@pytest.fixture(scope="module")
def write_app():
    return _build_write_app()


def _write_requests(disjoint):
    return [
        Request(
            "/bump",
            params={"dir": str(i % SUBTREES if disjoint else 0)},
            user=f"user-{i}@example.org",
        )
        for i in range(BATCH)
    ]


@pytest.mark.parametrize("concurrency", [1, 4, 16])
@pytest.mark.parametrize("layout", ["disjoint-subtrees", "single-subtree"])
def test_fs_write_contention(benchmark, write_app, layout, concurrency):
    benchmark.group = f"fs-writes-{concurrency}-workers-{layout}"
    requests = _write_requests(disjoint=(layout == "disjoint-subtrees"))
    with Dispatcher(write_app, workers=concurrency) as server:

        def round_trip():
            responses = server.dispatch_all(requests)
            assert all("bumped" in r.body() for r in responses)

        benchmark(round_trip)

    seconds_per_batch = benchmark.stats.stats.mean
    benchmark.extra_info["layout"] = layout
    benchmark.extra_info["concurrency"] = concurrency
    benchmark.extra_info["requests_per_sec"] = round(BATCH / seconds_per_batch, 1)


def test_disjoint_subtrees_scale_vs_single_lock(write_app):
    """The ISSUE acceptance criterion, standalone (no --benchmark-only
    needed): at 4 workers, write transactions under disjoint directories
    reach >1.5x the req/s of the same transactions serialized under one
    directory — the single-lock regime ResinFS used to impose on every
    workload."""

    def requests_per_sec(disjoint):
        requests = _write_requests(disjoint)
        with Dispatcher(write_app, workers=4) as server:
            server.dispatch_all(requests)  # warm the pool and lock registry
            start = time.perf_counter()
            server.dispatch_all(requests)
            elapsed = time.perf_counter() - start
        return BATCH / elapsed

    single = requests_per_sec(disjoint=False)
    disjoint = requests_per_sec(disjoint=True)
    assert disjoint > 1.5 * single, (
        f"expected >1.5x scaling on disjoint subtrees, got "
        f"{disjoint / single:.2f}x ({single:.0f} -> {disjoint:.0f} req/s)"
    )
