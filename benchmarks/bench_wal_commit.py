"""Write-ahead log group-commit benchmark: durable vs in-memory writes.

Concurrent workers insert into per-worker tables (disjoint table locks, so
the write-ahead log is the only shared resource) on a plain in-memory
environment and on a durable one (``Resin.open`` with ``sync="fsync"``).
Group commit is what keeps the durable column competitive: every worker
buffers its record under the log mutex and one leader's fsync makes the
whole batch durable, so the sync count stays well below the record count.

Acceptance bars (standalone tests, no ``--benchmark-only`` needed):

* at 16 workers, durable throughput is within 3x of in-memory
  (``test_durable_within_3x_of_memory_at_16_workers``);
* at 16 workers, group commit batches — strictly fewer fsyncs than
  records — and disabling it pays one sync per record
  (``test_group_commit_batches_syncs``).

Run with::

    pytest benchmarks/bench_wal_commit.py --benchmark-only \
        --benchmark-group-by=group --benchmark-columns=min,mean,ops
"""

import shutil
import tempfile
import threading
import time

import pytest

from repro.environment import Environment
from repro.runtime_api import Resin

#: Inserts per worker per measured batch.
INSERTS = 8

WORKER_COUNTS = [1, 4, 16]


def _run_batch(db, workers):
    """``workers`` threads, each inserting ``INSERTS`` rows into its own
    table; returns when every row is committed."""
    errors = []
    start = threading.Barrier(workers)

    def worker(wid):
        try:
            start.wait()
            for seq in range(INSERTS):
                db.query(f"INSERT INTO bench_{wid} (seq, payload) "
                         f"VALUES ({seq}, 'row-{wid}-{seq}')")
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors


def _create_tables(db, workers):
    for wid in range(workers):
        db.query(f"CREATE TABLE bench_{wid} (seq INT, payload TEXT)")


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_wal_commit_in_memory(benchmark, workers):
    benchmark.group = f"wal-commit-{workers}-workers"
    env = Environment()
    _create_tables(env.db, workers)
    benchmark(lambda: _run_batch(env.db, workers))
    _annotate(benchmark, workers, mode="in-memory")


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_wal_commit_durable(benchmark, workers):
    benchmark.group = f"wal-commit-{workers}-workers"
    store = tempfile.mkdtemp(prefix="bench-wal-")
    resin = Resin.open(store)
    try:
        _create_tables(resin.db, workers)
        benchmark(lambda: _run_batch(resin.db, workers))
        wal = resin.durability.wal
        benchmark.extra_info["records"] = wal.records
        benchmark.extra_info["syncs"] = wal.syncs
        _annotate(benchmark, workers, mode="durable")
    finally:
        resin.durability.close()
        shutil.rmtree(store, ignore_errors=True)


def _annotate(benchmark, workers, mode):
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["inserts_per_sec"] = round(
        workers * INSERTS / seconds, 1)


def _throughput(db, workers, rounds=3):
    best = 0.0
    for _ in range(rounds):
        start = time.perf_counter()
        _run_batch(db, workers)
        elapsed = time.perf_counter() - start
        best = max(best, workers * INSERTS / elapsed)
    return best


def test_durable_within_3x_of_memory_at_16_workers():
    """The ISSUE acceptance criterion: group commit keeps durable writes
    within 3x of in-memory throughput at 16 concurrent workers."""
    env = Environment()
    _create_tables(env.db, 16)
    _run_batch(env.db, 16)  # warm-up
    memory = _throughput(env.db, 16)

    store = tempfile.mkdtemp(prefix="bench-wal-")
    resin = Resin.open(store)
    try:
        _create_tables(resin.db, 16)
        _run_batch(resin.db, 16)  # warm-up
        durable = _throughput(resin.db, 16)
    finally:
        resin.durability.close()
        shutil.rmtree(store, ignore_errors=True)

    assert durable >= memory / 3, (
        f"durable throughput {durable:.0f} inserts/s is more than 3x below "
        f"in-memory {memory:.0f} inserts/s")


def test_group_commit_batches_syncs():
    """At 16 workers one leader fsync absorbs whole batches of records;
    with batching disabled every record pays its own sync."""
    store = tempfile.mkdtemp(prefix="bench-wal-")
    resin = Resin.open(store)
    try:
        _create_tables(resin.db, 16)
        _run_batch(resin.db, 16)
        wal = resin.durability.wal
        assert wal.syncs < wal.records, (
            f"expected group commit to batch: {wal.syncs} syncs for "
            f"{wal.records} records")
    finally:
        resin.durability.close()
        shutil.rmtree(store, ignore_errors=True)

    store = tempfile.mkdtemp(prefix="bench-wal-")
    resin = Resin.open(store, group_commit=False)
    try:
        _create_tables(resin.db, 16)
        _run_batch(resin.db, 16)
        wal = resin.durability.wal
        assert wal.syncs >= wal.records
    finally:
        resin.durability.close()
        shutil.rmtree(store, ignore_errors=True)
