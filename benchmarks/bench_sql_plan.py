"""Query-plan benchmark: secondary-index lookups vs the seed full scan.

Twin databases hold the same 4 000-row table; one carries sorted secondary
indexes on ``id`` and ``grp``, the other none (the planner then degrades to
``SeqScan`` — the seed engine's only access path).  Three query shapes run
against both, at 1/4/16 concurrent workers:

* ``point`` — ``WHERE id = <k>`` equality lookup;
* ``range`` — ``WHERE id >= a AND id < b`` over ~1 % of the table;
* ``bulk``  — ``WHERE grp = <g>`` fetching ~2 % of the rows.

A fourth group measures the HotCRP paper page (population 150) in observe
and enforce policy modes, with and without the schema's indexes — the
page-load before/after column for this change.

Acceptance bars (standalone tests, no ``--benchmark-only`` needed):

* indexed point lookups are at least 5x faster than the full scan
  (``test_indexed_point_lookup_5x_faster``);
* plans and full scans return identical rows while doing it
  (checked inside every measured batch builder).

Run with::

    pytest benchmarks/bench_sql_plan.py --benchmark-only \
        --benchmark-group-by=group --benchmark-columns=min,mean,ops
"""

import threading
import time

import pytest

from repro.channels.sqlchan import Database
from repro.evaluation.hotcrp_perf import HotCRPPageWorkload

#: Rows in the benchmark table.
TABLE_ROWS = 4_000

#: Distinct ``grp`` values (so one group is ~2% of the table).
GROUPS = 50

#: Queries per worker per measured batch.
QUERIES = 10

WORKER_COUNTS = [1, 4, 16]

QUERY_SHAPES = {
    "point": lambda k: f"SELECT val FROM big WHERE id = {k * 37 % TABLE_ROWS}",
    "range": lambda k: (
        f"SELECT val FROM big WHERE id >= {k * 31 % (TABLE_ROWS - 40)} "
        f"AND id < {k * 31 % (TABLE_ROWS - 40) + 40}"
    ),
    "bulk": lambda k: f"SELECT val FROM big WHERE grp = {k % GROUPS}",
}


def build_database(indexed: bool) -> Database:
    db = Database()
    db.execute_unchecked("CREATE TABLE big (id INTEGER, grp INTEGER, val TEXT)")
    values = ", ".join(f"({i}, {i % GROUPS}, 'v{i}')" for i in range(TABLE_ROWS))
    db.execute_unchecked(f"INSERT INTO big (id, grp, val) VALUES {values}")
    if indexed:
        db.create_index("big", "id")
        db.create_index("big", "grp")
    return db


def _run_batch(db: Database, shape: str, workers: int) -> None:
    errors = []
    start = threading.Barrier(workers)
    make = QUERY_SHAPES[shape]

    def worker(wid: int) -> None:
        try:
            start.wait()
            for seq in range(QUERIES):
                rows = db.query(make(wid * QUERIES + seq)).rows
                assert rows, "every probe hits at least one row"
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors


@pytest.fixture(scope="module")
def databases():
    return {True: build_database(True), False: build_database(False)}


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("shape", list(QUERY_SHAPES))
@pytest.mark.parametrize("indexed", [False, True])
def test_sql_plan_lookup(benchmark, databases, shape, workers, indexed):
    db = databases[indexed]
    benchmark.group = f"sql-{shape}-{workers}-workers"
    benchmark.extra_info["mode"] = "indexed" if indexed else "seqscan"
    benchmark.extra_info["workers"] = workers
    benchmark(lambda: _run_batch(db, shape, workers))
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["queries_per_sec"] = round(workers * QUERIES / seconds, 1)


@pytest.mark.parametrize("policy_mode", ["observe", "enforce"])
@pytest.mark.parametrize("indexed", [False, True])
def test_hotcrp_page_with_plans(benchmark, policy_mode, indexed):
    """The HotCRP page-load before/after column: the same populated site
    with the seed's full-scan behaviour (indexes dropped) and with this
    change's indexes, in both policy modes."""
    workload = HotCRPPageWorkload(
        use_resin=True, policy_mode=policy_mode, population=150
    )
    if not indexed:
        for table in workload.site.env.db.engine.tables.values():
            table.indexes.clear()
    benchmark.group = "hotcrp-page-plans"
    benchmark.extra_info["policy_mode"] = policy_mode
    benchmark.extra_info["mode"] = "indexed" if indexed else "seqscan"
    body = benchmark(workload.generate_page)
    assert "Improving Application Security" in body


def _mean_seconds(callable_, rounds: int) -> float:
    callable_()  # warm-up
    start = time.perf_counter()
    for _ in range(rounds):
        callable_()
    return (time.perf_counter() - start) / rounds


def test_indexed_point_lookup_5x_faster():
    """The ISSUE acceptance criterion: indexed point lookups beat the seed
    full scan by at least 5x on the 4 000-row table."""
    indexed = build_database(True)
    seqscan = build_database(False)
    sql = QUERY_SHAPES["point"](7)
    assert [r["val"] for r in indexed.query(sql)] == [
        r["val"] for r in seqscan.query(sql)
    ]
    fast = _mean_seconds(lambda: indexed.query(sql), rounds=60)
    slow = _mean_seconds(lambda: seqscan.query(sql), rounds=15)
    assert slow >= 5 * fast, (
        f"indexed point lookup {fast * 1e6:.0f}us is not 5x faster than "
        f"full scan {slow * 1e6:.0f}us"
    )


def test_plans_match_seqscan_rows():
    """Every benchmark shape returns identical rows on both databases."""
    indexed = build_database(True)
    seqscan = build_database(False)
    for shape, make in QUERY_SHAPES.items():
        for k in (0, 7, 123):
            sql = make(k)
            assert [r["val"] for r in indexed.query(sql)] == [
                r["val"] for r in seqscan.query(sql)
            ], (shape, k)
