"""Facade-overhead microbenchmark.

The ``Resin`` facade wraps the Table-3 free functions; this benchmark tracks
what the wrapping costs so the fluent API stays effectively free.  Compare
groups with::

    pytest benchmarks/bench_api_overhead.py --benchmark-only \
        --benchmark-group-by=group

``policy_add`` / ``Resin.taint`` / ``BoundPolicy.on`` all bottom out in the
same range-map update; the facade should add no more than a method-dispatch
constant on top.
"""

import pytest

from repro.core.api import policy_add, policy_get
from repro.policies import UntrustedData
from repro.runtime_api import Resin


@pytest.fixture(scope="module")
def resin():
    return Resin()


@pytest.fixture(scope="module")
def policy():
    return UntrustedData("bench")


def test_policy_add_free_function(benchmark, policy):
    benchmark.group = "taint"
    benchmark(lambda: policy_add("payload string", policy))


def test_resin_taint(benchmark, resin, policy):
    benchmark.group = "taint"
    benchmark(lambda: resin.taint("payload string", policy))


def test_resin_bound_policy_on(benchmark, resin):
    benchmark.group = "taint"
    binder = resin.policy(UntrustedData, "bench")
    benchmark(lambda: binder.on("payload string"))


def test_policy_get_free_function(benchmark, policy):
    value = policy_add("payload string", policy)
    benchmark.group = "inspect"
    benchmark(lambda: policy_get(value))


def test_resin_policies(benchmark, resin, policy):
    value = resin.taint("payload string", policy)
    benchmark.group = "inspect"
    benchmark(lambda: resin.policies(value))


def test_channel_creation_global_registry(benchmark):
    from repro.channels.socketchan import SocketChannel
    benchmark.group = "channel"
    benchmark(lambda: SocketChannel("peer"))


def test_channel_creation_scoped_registry(benchmark, resin):
    benchmark.group = "channel"
    benchmark(lambda: resin.channel("socket", "peer"))
