"""Experiment E3: the security evaluation of Table 4.

Runs every application/assertion scenario twice — unprotected and with the
RESIN assertion — and reprints Table 4: assertion size, previously-known and
newly-discovered vulnerabilities, how many attacks were exploitable without
RESIN and how many the assertion prevented.

The benchmark timing itself measures the cost of running the full protected
attack suite (useful as a regression canary); the reproduction result is the
printed table, which is also checked by assertions below and by
``tests/integration/test_table4_and_workloads.py``.
"""

import pytest

from repro.evaluation import table4


@pytest.fixture(scope="module")
def results():
    return table4.run_all(True), table4.run_all(False)


def test_table4_report(benchmark, results, capsys):
    protected = benchmark.pedantic(table4.run_all, args=(True,), rounds=3,
                                   iterations=1)
    _, unprotected = results

    with capsys.disabled():
        print()
        print("=== Table 4: assertions, vulnerabilities and prevention ===")
        print(table4.format_table(protected, unprotected))
        print()
        print("Per-attack detail (RESIN enabled):")
        for row in protected:
            for attack in row.attacks:
                status = ("PREVENTED" if not attack.succeeded
                          else "NOT PREVENTED")
                print(f"  [{status:13}] {row.application}: {attack.name}")

    # Reproduction checks: nothing exploitable with RESIN, everything the
    # paper reports exploitable without it.
    assert all(row.exploited == 0 for row in protected)
    assert all(row.legitimate_ok for row in protected)
    expected = sum(s.known + s.discovered for s in table4.SCENARIOS)
    assert sum(row.exploited for row in unprotected) >= expected


def test_assertion_loc_totals(benchmark, results, capsys):
    protected, _ = results
    paper_loc = benchmark(lambda: [s.assertion_loc for s in table4.SCENARIOS])
    measured_loc = [row.assertion_loc for row in protected]
    assert measured_loc == paper_loc
    with capsys.disabled():
        print(f"\nassertion sizes (LOC, from the paper): {paper_loc}; "
              f"total {sum(paper_loc)} lines across "
              f"{len(paper_loc)} assertions")
