"""Keep-alive vs close-per-request over the real HTTP/1.1 socket server.

The tentpole question of the socket front end: what does connection reuse
buy once every response is a streaming body whose chunks each cross the
taint boundary?  Per request the server does identical work — parse, admit
through the dispatcher, run the handler, assert every chunk at the channel
— so the whole difference between the two columns is connection overhead:
the TCP handshake, the asyncio accept + connection task, and the teardown
that close-per-request pays 16 times per batch and keep-alive pays once.

Three client disciplines, all at ``CONNECTIONS`` concurrent clients:

* ``keepalive-pipelined`` — one persistent connection per client, requests
  sent in pipelined batches of ``PIPELINE`` (RFC 9112 §9.3.2; the serve
  loop answers them in order and coalesces the responses into one write);
* ``keepalive-serial`` — one persistent connection per client, strict
  request/response lockstep;
* ``close-per-request`` — a fresh connection for every single request.

A fourth, socket-free column (``test_in_process_throughput``) dispatches
the same requests straight into ``AsyncDispatcher``, so the wire cost of
the socket path is visible against the in-process harness.

The served body is a chunked stream of three records tainted with
``ReadAccessPolicy`` where they are born (as rows loaded from storage
would be); every request re-asserts each record at the HTTP channel on its
way out, so the benchmark measures the server with data flow assertions
on, not a hollow echo route.

The acceptance criterion (``test_keep_alive_beats_close_per_request``,
run standalone in CI) holds pipelined keep-alive — connection reuse as
HTTP/1.1 defines it — to >= 2x the req/s of close-per-request.

Run with::

    pytest benchmarks/bench_http_serve.py --benchmark-only \
        --benchmark-group-by=group --benchmark-columns=min,mean,ops
"""

import socket
import statistics
import threading
import time

import pytest

from repro.core.api import policy_add
from repro.environment import Environment
from repro.policies.acl import ReadAccessPolicy
from repro.server.async_dispatcher import AsyncDispatcher
from repro.server.http import HTTPServer, ServerHandle
from repro.web.app import WebApplication
from repro.web.request import Request
from repro.web.response import Response

#: Concurrent client connections (the ISSUE's stated concurrency level).
CONNECTIONS = 16

#: Requests each client issues per measured batch.
REQS_PER_CLIENT = 32

#: Requests per pipelined burst on the ``keepalive-pipelined`` discipline.
PIPELINE = 8

#: The account allowed to read the streamed records.
OWNER = "owner@example.org"

#: Last frame of every complete chunked response body.
TERMINATOR = b"0\r\n\r\n"

_REQUEST = (
    b"GET /export HTTP/1.1\r\nHost: bench\r\n"
    b"X-Resin-User: owner@example.org\r\n\r\n"
)
_REQUEST_CLOSE = (
    b"GET /export HTTP/1.1\r\nHost: bench\r\n"
    b"X-Resin-User: owner@example.org\r\n"
    b"Connection: close\r\n\r\n"
)


def _build_app():
    env = Environment()
    app = WebApplication(env, name="bench-http")
    # Tainted once, where the data is born; asserted on every request at
    # the channel boundary as each chunk is framed.
    records = [
        policy_add(f"record-{i};", ReadAccessPolicy([OWNER], label="export"))
        for i in range(3)
    ]

    @app.route("/export")
    async def export(request, response):
        def rows():
            for record in records:
                yield record

        return Response().stream(rows())

    return app


@pytest.fixture(scope="module")
def served():
    server = HTTPServer(
        _build_app(),
        user_header="x-resin-user",
        workers=8,
        max_in_flight=2 * CONNECTIONS,
        max_connections=4 * CONNECTIONS,
    )
    with ServerHandle(server).start() as handle:
        yield handle


def _read_responses(sock, count):
    """Read until ``count`` complete chunked responses have arrived."""
    buf = b""
    while buf.count(TERMINATOR) < count:
        data = sock.recv(65536)
        if not data:
            raise AssertionError(
                f"connection closed after {buf.count(TERMINATOR)}/{count} "
                f"responses: {buf[-200:]!r}"
            )
        buf += data
    return buf


def _client_pipelined(port, latencies):
    sock = socket.create_connection(("127.0.0.1", port), timeout=60)
    try:
        for _ in range(REQS_PER_CLIENT // PIPELINE):
            start = time.perf_counter()
            sock.sendall(_REQUEST * PIPELINE)
            buf = _read_responses(sock, PIPELINE)
            latencies.append(time.perf_counter() - start)
            assert buf.count(b"record-2;") == PIPELINE
    finally:
        sock.close()


def _client_serial(port, latencies):
    sock = socket.create_connection(("127.0.0.1", port), timeout=60)
    try:
        for _ in range(REQS_PER_CLIENT):
            start = time.perf_counter()
            sock.sendall(_REQUEST)
            buf = _read_responses(sock, 1)
            latencies.append(time.perf_counter() - start)
            assert b"record-2;" in buf
    finally:
        sock.close()


def _client_close(port, latencies):
    for _ in range(REQS_PER_CLIENT):
        start = time.perf_counter()
        sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        try:
            sock.sendall(_REQUEST_CLOSE)
            buf = _read_responses(sock, 1)
        finally:
            sock.close()
        latencies.append(time.perf_counter() - start)
        assert b"record-2;" in buf


_CLIENTS = {
    "keepalive-pipelined": _client_pipelined,
    "keepalive-serial": _client_serial,
    "close-per-request": _client_close,
}


def _run_batch(port, discipline):
    """One measured batch: CONNECTIONS clients, REQS_PER_CLIENT each.

    Returns per-operation latencies (an operation is one pipelined burst
    for the pipelined discipline, one request otherwise)."""
    client = _CLIENTS[discipline]
    latencies = []
    threads = [
        threading.Thread(target=client, args=(port, latencies))
        for _ in range(CONNECTIONS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(latencies) > 0
    return latencies


@pytest.mark.parametrize("discipline", list(_CLIENTS))
def test_http_serve_throughput(benchmark, served, discipline):
    benchmark.group = f"http-{discipline}"
    latencies = []

    def batch():
        latencies.extend(_run_batch(served.port, discipline))

    benchmark(batch)
    total = CONNECTIONS * REQS_PER_CLIENT
    seconds_per_batch = benchmark.stats.stats.mean
    benchmark.extra_info["connections"] = CONNECTIONS
    benchmark.extra_info["requests_per_sec"] = round(total / seconds_per_batch, 1)
    quantiles = statistics.quantiles(latencies, n=100)
    benchmark.extra_info["p99_latency_ms"] = round(quantiles[98] * 1e3, 3)


def test_in_process_throughput(benchmark):
    """The no-socket baseline: the same route, same per-chunk assertions,
    dispatched straight into ``AsyncDispatcher`` — everything the socket
    columns add on top of this is wire cost (parsing, framing, syscalls,
    connection management)."""
    benchmark.group = "http-in-process"
    app = _build_app()
    total = CONNECTIONS * REQS_PER_CLIENT
    requests = [Request("/export", user=OWNER) for _ in range(total)]

    def batch():
        with AsyncDispatcher(app, workers=8, max_in_flight=2 * CONNECTIONS) as server:
            responses = server.run(requests)
        assert all("record-2;" in r.body() for r in responses)

    benchmark(batch)
    seconds_per_batch = benchmark.stats.stats.mean
    benchmark.extra_info["requests_per_sec"] = round(total / seconds_per_batch, 1)


def test_keep_alive_beats_close_per_request(served):
    """The ISSUE acceptance criterion, standalone (no --benchmark-only
    needed): at 16 concurrent connections streaming policy-asserted
    chunks, keep-alive (pipelined, as HTTP/1.1 connection reuse allows)
    reaches >= 2x the req/s of opening a fresh connection per request —
    the per-request work is identical, so reuse wins exactly the
    handshake + accept + teardown that close-per-request repays every
    time."""
    total = CONNECTIONS * REQS_PER_CLIENT

    def requests_per_sec(discipline):
        _run_batch(served.port, discipline)  # warm caches and listener
        best = 0.0
        for _ in range(3):
            start = time.perf_counter()
            _run_batch(served.port, discipline)
            best = max(best, total / (time.perf_counter() - start))
        return best

    close = requests_per_sec("close-per-request")
    keep_alive = requests_per_sec("keepalive-pipelined")
    assert keep_alive >= 2.0 * close, (
        f"expected >=2x keep-alive-vs-close throughput at {CONNECTIONS} "
        f"connections, got {keep_alive / close:.2f}x "
        f"({close:.0f} -> {keep_alive:.0f} req/s)"
    )
