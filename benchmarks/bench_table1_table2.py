"""Experiments E1 and E2: the motivation statistics (Tables 1 and 2).

These tables are published vulnerability statistics, not measurements of
RESIN itself; the harness recomputes the percentages from the raw counts and
prints both tables so they can be compared against the paper.
"""

from repro.security import vulndb


def _build_tables():
    table1 = vulndb.cve_2008_table()
    table2 = vulndb.web_survey_table()
    return table1, table2


def test_table1_table2_report(benchmark, capsys):
    table1, table2 = benchmark(_build_tables)

    with capsys.disabled():
        print()
        print("=== Table 1: top CVE security vulnerabilities of 2008 ===")
        print(f"{'Vulnerability':32} {'Count':>8} {'Percentage':>11}")
        for category, count, percent in table1:
            print(f"{category:32} {count:>8} {percent:>10.1f}%")
        print(f"{'Total':32} {vulndb.cve_2008_total():>8} {100.0:>10.1f}%")
        print(f"(classes addressable by RESIN assertions: "
              f"{vulndb.addressable_fraction():.1%} of all 2008 CVEs)")
        print()
        print("=== Table 2: top Web site vulnerabilities of 2007 ===")
        print(f"{'Vulnerability':32} {'Vulnerable sites':>17}")
        for category, percent in table2:
            print(f"{category:32} {percent:>16.1f}%")

    # Shape checks against the paper.
    table1_map = {name: (count, pct) for name, count, pct in table1}
    assert table1_map["SQL injection"] == (1176, 20.4)
    assert table1_map["Cross-site scripting"][1] == 14.0
    assert vulndb.cve_2008_total() == 5768
    assert dict(table2)["Cross-site scripting"] == 31.5
