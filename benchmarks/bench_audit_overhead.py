"""Audit recorder overhead: HotCRP page renders with audit on vs off.

The ISSUE acceptance bar: with the recorder enabled, the HotCRP
page-render group stays within **1.3x** of the audit-off baseline at 16
workers.  ``test_audit_overhead_within_1_3x`` enforces the floor locally
(best-of-5, the ``bench_taint_hotpath`` pattern); the CI autosave/compare
cache additionally gates regressions against the previous successful
build on this branch.

Groups:

* ``audit-page-render``  — one HotCRP page render, audit off / memory / disk
* ``audit-page-render-16`` — 16 workers x 4 pages, audit off / on
* ``audit-capture``      — the raw ``record()`` enqueue cost
"""

import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.audit.ledger import AuditLedger, MemoryLedger
from repro.audit.recorder import AuditRecorder, default_audit
from repro.evaluation import hotcrp_perf


@pytest.fixture(scope="module")
def hotcrp_workloads():
    return hotcrp_perf.build_workloads()


@pytest.fixture
def memory_recorder():
    recorder = AuditRecorder(MemoryLedger())
    yield recorder
    recorder.close()


@pytest.fixture
def disk_recorder(tmp_path):
    recorder = AuditRecorder(AuditLedger(str(tmp_path / "audit")))
    yield recorder
    recorder.close()


# -- single-threaded page render --------------------------------------------------


def test_page_render_audit_off(benchmark, hotcrp_workloads):
    workload = hotcrp_workloads["resin"]
    benchmark.group = "audit-page-render"
    benchmark.extra_info["audit"] = "off"
    body = benchmark(workload.generate_page)
    assert "Improving Application Security" in body


def test_page_render_audit_memory(benchmark, hotcrp_workloads, memory_recorder):
    workload = hotcrp_workloads["resin"]
    benchmark.group = "audit-page-render"
    benchmark.extra_info["audit"] = "memory"
    with default_audit(memory_recorder):
        body = benchmark(workload.generate_page)
    memory_recorder.flush()
    assert "Improving Application Security" in body
    assert memory_recorder.events_recorded > 0


def test_page_render_audit_disk(benchmark, hotcrp_workloads, disk_recorder):
    workload = hotcrp_workloads["resin"]
    benchmark.group = "audit-page-render"
    benchmark.extra_info["audit"] = "disk"
    with default_audit(disk_recorder):
        body = benchmark(workload.generate_page)
    disk_recorder.flush()
    assert "Improving Application Security" in body
    assert disk_recorder.ledger.events_written > 0


# -- 16-worker page render (the acceptance group) ---------------------------------


def _parallel_render(workload, pool, workers=16, pages=4):
    def task():
        for _ in range(pages):
            workload.generate_page()

    futures = [pool.submit(task) for _ in range(workers)]
    for future in futures:
        future.result()


@pytest.mark.parametrize("audit", ["off", "on"])
def test_page_render_16_workers(benchmark, hotcrp_workloads, audit):
    workload = hotcrp_workloads["resin"]
    benchmark.group = "audit-page-render-16"
    benchmark.extra_info["audit"] = audit
    pool = ThreadPoolExecutor(max_workers=16)
    try:
        if audit == "off":
            benchmark(lambda: _parallel_render(workload, pool))
        else:
            recorder = AuditRecorder(MemoryLedger())
            try:
                with default_audit(recorder):
                    benchmark(lambda: _parallel_render(workload, pool))
            finally:
                recorder.close()
    finally:
        pool.shutdown(wait=True)


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_audit_overhead_within_1_3x(hotcrp_workloads):
    """The acceptance floor: audit-on must stay within 1.3x of audit-off on
    the HotCRP page-render group at 16 workers.  The capture path pays one
    queue append per decision; serialization and framing run on the
    recorder's background writer thread."""
    workload = hotcrp_workloads["resin"]
    pool = ThreadPoolExecutor(max_workers=16)
    try:
        render = lambda: _parallel_render(workload, pool)  # noqa: E731
        off = _best_of(render)
        recorder = AuditRecorder(MemoryLedger())
        try:
            with default_audit(recorder):
                on = _best_of(render)
            recorder.flush()
            assert recorder.events_recorded > 0
        finally:
            recorder.close()
    finally:
        pool.shutdown(wait=True)
    ratio = on / off
    assert ratio <= 1.3, f"audit-on {ratio:.2f}x audit-off (bound: 1.3x)"


# -- raw capture cost -------------------------------------------------------------


def test_record_enqueue_cost(benchmark, memory_recorder):
    from repro.policies import UntrustedData
    from repro.tracking import taint_str

    tainted = taint_str("payload " * 64, UntrustedData("bench"))
    rangemap = tainted.rangemap
    policies = tainted.policies()
    benchmark.group = "audit-capture"

    def capture():
        memory_recorder.record(
            "export", verdict="allow", policies=policies, rangemap=rangemap
        )

    benchmark(capture)
    memory_recorder.flush()
    assert memory_recorder.events_recorded > 0
