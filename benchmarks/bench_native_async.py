"""Loop-native ``async def`` handlers vs executor-wrapped sync handlers.

The tentpole question of the native-async redesign: for I/O-bound handlers,
what does awaiting the handler on the event loop (no executor hop) buy over
running an equivalent blocking handler on the dispatcher's thread pool?

Both workloads simulate the same downstream I/O wait per request; the app
exposes them side by side:

* ``/io-native`` — ``async def``, ``await asyncio.sleep(IO_WAIT)``; served
  directly on the loop, so concurrency is bounded only by ``max_in_flight``;
* ``/io-executor`` — sync, ``time.sleep(IO_WAIT)``; served on the
  dispatcher's executor, so concurrency is bounded by its ``WORKERS``
  threads no matter how many requests are admitted.

At 1 and 4 in-flight the two paths are equivalent (the worker pool covers
the concurrency).  At 16 in-flight the loop overlaps all 16 waits while the
executor path still overlaps only ``WORKERS`` — the regime where the native
path must win by >= 2x (``test_native_async_scales_past_the_executor``, run
standalone in CI).

Run with::

    pytest benchmarks/bench_native_async.py --benchmark-only \
        --benchmark-group-by=group --benchmark-columns=min,mean,ops
"""

import asyncio
import time

import pytest

from repro.environment import Environment
from repro.runtime_api import Resin
from repro.server.async_dispatcher import AsyncDispatcher
from repro.web.request import Request

#: Requests per measured batch.
BATCH = 32

#: Simulated per-request downstream I/O wait (both flavours).
IO_WAIT = 0.010

#: Executor threads backing the sync path (and the native path's dispatcher,
#: where they sit idle) — deliberately smaller than the top in-flight level.
WORKERS = 4


def _build_app():
    resin = Resin(Environment())
    app = resin.app("bench-native")

    @app.route("/io-native")
    async def io_native(request, response):
        await asyncio.sleep(IO_WAIT)
        return f"native done for {request.user}"

    @app.route("/io-executor")
    def io_executor(request, response):
        time.sleep(IO_WAIT)
        response.write(f"executor done for {request.user}")

    return app


@pytest.fixture(scope="module")
def app():
    return _build_app()


def _requests(path):
    return [
        Request(path, params={"i": str(i)}, user=f"user-{i}@example.org")
        for i in range(BATCH)
    ]


def _serve_batch(app, path, in_flight):
    requests = _requests(path)
    with AsyncDispatcher(app, workers=WORKERS, max_in_flight=in_flight) as server:
        responses = server.run(requests)
    assert all("done" in response.body() for response in responses)


@pytest.mark.parametrize("in_flight", [1, 4, 16])
def test_native_async_throughput(benchmark, app, in_flight):
    benchmark.group = f"io-native-{in_flight}"

    def round_trip():
        _serve_batch(app, "/io-native", in_flight)

    benchmark(round_trip)
    seconds_per_batch = benchmark.stats.stats.mean
    benchmark.extra_info["in_flight"] = in_flight
    benchmark.extra_info["requests_per_sec"] = round(BATCH / seconds_per_batch, 1)


@pytest.mark.parametrize("in_flight", [1, 4, 16])
def test_executor_throughput(benchmark, app, in_flight):
    benchmark.group = f"io-executor-{in_flight}"

    def round_trip():
        _serve_batch(app, "/io-executor", in_flight)

    benchmark(round_trip)
    seconds_per_batch = benchmark.stats.stats.mean
    benchmark.extra_info["in_flight"] = in_flight
    benchmark.extra_info["requests_per_sec"] = round(BATCH / seconds_per_batch, 1)


def test_native_async_scales_past_the_executor(app):
    """The ISSUE acceptance criterion, standalone (no --benchmark-only
    needed): at 16 in-flight I/O-bound requests over a 4-thread executor,
    loop-native handlers reach >= 2x the req/s of executor-wrapped ones —
    the loop overlaps every admitted wait, the pool only ``WORKERS`` of
    them."""

    def requests_per_sec(path):
        requests = _requests(path)
        with AsyncDispatcher(app, workers=WORKERS, max_in_flight=16) as server:
            server.run(requests)  # warm the pool
            start = time.perf_counter()
            server.run(requests)
            elapsed = time.perf_counter() - start
        return BATCH / elapsed

    executor = requests_per_sec("/io-executor")
    native = requests_per_sec("/io-native")
    assert native >= 2.0 * executor, (
        f"expected >=2x native-vs-executor throughput at 16 in-flight, got "
        f"{native / executor:.2f}x ({executor:.0f} -> {native:.0f} req/s)"
    )
