"""Asyncio front-end benchmark: req/s and per-table lock scaling.

Two questions, each in its own benchmark group:

* **Front-end cost** — requests/sec for the same page workload at 1/4/16
  concurrency, served by ``AsyncDispatcher`` (event loop + executor) vs the
  thread-pool ``Dispatcher``.  The async front end must stay in the same
  throughput regime: the loop adds scheduling, not parallelism.

* **Lock granularity** — concurrent write transactions that hold their
  table's lock across a read-modify-write with a simulated storage latency
  inside the critical section.  Spread over four disjoint tables the
  transactions overlap (per-table locks); aimed at one shared table they
  serialize — which is what the old single engine lock did to *every*
  workload.  The acceptance bar is >1.5x req/s for disjoint tables at 4
  concurrent tasks (``test_disjoint_tables_scale_vs_single_lock``, run
  standalone in CI).

Run with::

    pytest benchmarks/bench_async_dispatch.py --benchmark-only \
        --benchmark-group-by=group --benchmark-columns=min,mean,ops
"""

import time

import pytest

from repro.environment import Environment
from repro.server.async_dispatcher import AsyncDispatcher
from repro.server.dispatcher import Dispatcher
from repro.web.app import WebApplication
from repro.web.request import Request
from repro.web.sanitize import html_escape, sql_quote

#: Requests per measured batch.
BATCH = 32

#: Simulated per-request backend latency for the page workload (lock-free
#: wait, like a downstream service call) — what both front ends overlap.
BACKEND_WAIT = 0.010

#: Simulated storage latency *inside* a write transaction's critical
#: section — the time the request holds its table's lock.
TXN_HOLD = 0.005

#: Disjoint tables for the contention workload.
WRITE_TABLES = 4


def _build_page_app():
    env = Environment()
    env.db.execute_unchecked("CREATE TABLE pages (id INTEGER, title TEXT, body TEXT)")
    for page_id in range(8):
        quoted = sql_quote("lorem ipsum dolor sit amet ")
        env.db.query(
            f"INSERT INTO pages (id, title, body) "
            f"VALUES ({page_id}, 'title {page_id}', '{quoted}')"
        )
    app = WebApplication(env, "bench-async")

    @app.route("/page")
    def page(request, response):
        time.sleep(BACKEND_WAIT)
        page_id = int(request.param("id", 0)) % 8
        query = f"SELECT title, body FROM pages WHERE id = {page_id}"
        row = env.db.query(query).rows[0]
        response.write("<h1>")
        response.write(html_escape(row["title"]))
        response.write("</h1><div>")
        response.write(html_escape(row["body"]))
        response.write(f"</div><p>for {request.user}</p>")

    return app


def _build_write_app():
    env = Environment()
    for index in range(WRITE_TABLES):
        env.db.execute_unchecked(
            f"CREATE TABLE counters_{index} (id INTEGER, n INTEGER)"
        )
        env.db.query(f"INSERT INTO counters_{index} (id, n) VALUES (0, 0)")
    app = WebApplication(env, "bench-writes")

    @app.route("/bump")
    def bump(request, response):
        table = f"counters_{int(request.param('table', 0))}"
        # The per-table critical section: read, wait on (simulated) storage,
        # write back.  Requests on different tables hold different locks.
        with env.db.transaction(table):
            count = env.db.query(f"SELECT n FROM {table} WHERE id = 0").scalar()
            time.sleep(TXN_HOLD)
            env.db.query(f"UPDATE {table} SET n = {int(count) + 1} WHERE id = 0")
        response.write(f"{table} bumped")

    return app


@pytest.fixture(scope="module")
def page_app():
    return _build_page_app()


@pytest.fixture(scope="module")
def write_app():
    return _build_write_app()


def _page_requests():
    return [
        Request("/page", params={"id": str(i)}, user=f"user-{i}@example.org")
        for i in range(BATCH)
    ]


def _write_requests(disjoint):
    return [
        Request(
            "/bump",
            params={"table": str(i % WRITE_TABLES if disjoint else 0)},
            user=f"user-{i}@example.org",
        )
        for i in range(BATCH)
    ]


@pytest.mark.parametrize("concurrency", [1, 4, 16])
def test_async_dispatch_throughput(benchmark, page_app, concurrency):
    benchmark.group = f"page-async-{concurrency}"
    requests = _page_requests()
    with AsyncDispatcher(page_app, workers=concurrency) as server:

        def round_trip():
            responses = server.run(requests)
            assert all("lorem" in r.body() for r in responses)

        benchmark(round_trip)

    seconds_per_batch = benchmark.stats.stats.mean
    benchmark.extra_info["concurrency"] = concurrency
    benchmark.extra_info["requests_per_sec"] = round(BATCH / seconds_per_batch, 1)


@pytest.mark.parametrize("concurrency", [1, 4, 16])
def test_thread_dispatch_throughput(benchmark, page_app, concurrency):
    benchmark.group = f"page-threads-{concurrency}"
    requests = _page_requests()
    with Dispatcher(page_app, workers=concurrency) as server:

        def round_trip():
            responses = server.dispatch_all(requests)
            assert all("lorem" in r.body() for r in responses)

        benchmark(round_trip)

    seconds_per_batch = benchmark.stats.stats.mean
    benchmark.extra_info["concurrency"] = concurrency
    benchmark.extra_info["requests_per_sec"] = round(BATCH / seconds_per_batch, 1)


@pytest.mark.parametrize("layout", ["disjoint-tables", "single-table"])
def test_write_contention(benchmark, write_app, layout):
    benchmark.group = f"writes-4-tasks-{layout}"
    requests = _write_requests(disjoint=(layout == "disjoint-tables"))
    with AsyncDispatcher(write_app, workers=4) as server:

        def round_trip():
            responses = server.run(requests)
            assert all("bumped" in r.body() for r in responses)

        benchmark(round_trip)

    seconds_per_batch = benchmark.stats.stats.mean
    benchmark.extra_info["layout"] = layout
    benchmark.extra_info["requests_per_sec"] = round(BATCH / seconds_per_batch, 1)


def test_disjoint_tables_scale_vs_single_lock(write_app):
    """The ISSUE acceptance criterion, standalone (no --benchmark-only
    needed): at 4 concurrent tasks, write transactions on disjoint tables
    reach >1.5x the req/s of the same transactions serialized on one table —
    the single-lock regime the engine used to impose on every workload."""

    def requests_per_sec(disjoint):
        requests = _write_requests(disjoint)
        with AsyncDispatcher(write_app, workers=4) as server:
            server.run(requests)  # warm the pool and the lock registry
            start = time.perf_counter()
            server.run(requests)
            elapsed = time.perf_counter() - start
        return BATCH / elapsed

    single = requests_per_sec(disjoint=False)
    disjoint = requests_per_sec(disjoint=True)
    assert disjoint > 1.5 * single, (
        f"expected >1.5x scaling on disjoint tables, got {disjoint / single:.2f}x "
        f"({single:.0f} -> {disjoint:.0f} req/s)"
    )
