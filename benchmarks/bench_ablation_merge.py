"""Experiment E7 (ablation): merge strategies (Section 3.4.2).

When values with policies are combined in ways character-level tracking
cannot express (e.g. summing character codes into a checksum), RESIN merges
policy sets via each policy's ``merge`` method.  The ablation compares the
three strategies on a checksum-style workload:

* union  (``UntrustedData``): the result stays tainted — safe default for
  confidentiality/taint policies;
* intersection (``AuthenticData``): the result keeps the policy only when
  every operand had it — the right call for integrity policies;
* a custom merge that refuses mixing entirely.
"""

import pytest

from repro.core.exceptions import MergeError
from repro.core.policy import Policy
from repro.policies import AuthenticData, UntrustedData
from repro.tracking.tainted_number import taint_int


class NoMixPolicy(Policy):
    """A policy that refuses to be combined with unannotated data."""

    merge_strategy = "reject"


def checksum(values):
    total = values[0]
    for value in values[1:]:
        total = total + value
    return total


def _workload(policy, annotate_all):
    """40 integers; either all of them or only half carry ``policy``."""
    values = []
    for index in range(40):
        if annotate_all or index % 2 == 0:
            values.append(taint_int(index, (policy,)))
        else:
            values.append(index)
    return values


@pytest.mark.parametrize("strategy,policy,annotate_all,expect_kept", [
    ("union/all-tainted", UntrustedData("input"), True, True),
    ("union/half-tainted", UntrustedData("input"), False, True),
    ("intersect/all-authentic", AuthenticData("ca"), True, True),
    ("intersect/half-authentic", AuthenticData("ca"), False, False),
])
def test_merge_strategy_semantics(benchmark, strategy, policy, annotate_all,
                                  expect_kept, capsys):
    benchmark.group = "ablation:merge"
    values = _workload(policy, annotate_all)
    total = benchmark(checksum, values)

    kept = hasattr(total, "policies") and total.policies().has_type(type(policy))
    benchmark.extra_info["policy_survives"] = kept
    with capsys.disabled():
        print(f"\n[{strategy:24}] checksum={int(total):4d} "
              f"policy survives merge: {kept}")
    assert kept == expect_kept
    assert int(total) == sum(range(40))


def test_reject_strategy_stops_the_merge(benchmark):
    benchmark.group = "ablation:merge"
    values = _workload(NoMixPolicy(), annotate_all=False)

    def attempt():
        try:
            checksum(values)
            return False
        except MergeError:
            return True

    assert benchmark(attempt)


def test_plain_checksum_baseline(benchmark):
    """Baseline: the same checksum over plain integers (no tracking cost)."""
    benchmark.group = "ablation:merge"
    assert benchmark(checksum, list(range(40))) == sum(range(40))
