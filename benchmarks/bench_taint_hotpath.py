"""Taint hot-path benchmarks: lazy ropes, interned sets, memoized merges.

The ``taint-concat-render`` group is the ROADMAP acceptance target (>=2x on
concat-heavy page renders).  ``test_lazy_render_at_least_2x_faster_than_eager``
enforces the floor locally by re-running the same render loop with the rope
forced flat after every append — the copy-per-concat behaviour the lazy rope
replaced; the CI autosave/compare cache additionally gates regressions
against the previous successful build on this branch.

Groups:

* ``taint-concat-render``  — synthetic page assembly + channel-boundary flatten
* ``taint-page-render``    — real HotCRP and phpBB page renders
* ``taint-micro:<op>``     — concat / slice / join / merge at 1/4/16 workers
* ``taint-merge-many``     — regression case for the quadratic merge fold
"""

import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.policyset import PolicySet
from repro.evaluation import hotcrp_perf
from repro.policies import UntrustedData
from repro.tracking import (
    TaintedStr,
    clear_merge_cache,
    merge_cache_info,
    merge_many,
    merge_policysets,
    taint_str,
)

AUTHOR = UntrustedData("author@example.org")
SIGNATURE = UntrustedData("signature")


def _pieces(count):
    return [
        taint_str(f"message body {index} " * 4, AUTHOR if index % 2 else SIGNATURE)
        for index in range(count)
    ]


def _render_once(pieces):
    page = TaintedStr("")
    for piece in pieces:
        page = page + "<div class='post'>" + piece + "</div>\n"
    return page


# -- concat-heavy page render (the >=2x ROADMAP target) --------------------------


@pytest.mark.parametrize("piece_count", [64, 256])
def test_concat_render(benchmark, piece_count):
    pieces = _pieces(piece_count)
    benchmark.group = "taint-concat-render"
    benchmark.extra_info["pieces"] = piece_count

    def render():
        page = _render_once(pieces)
        return page.encode()  # the channel boundary forces the one flatten

    body = benchmark(render)
    assert body.policies_at(len("<div class='post'>")) == {SIGNATURE}


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_lazy_render_at_least_2x_faster_than_eager():
    """The acceptance floor: lazy ropes must beat forced-eager flattening by
    >=2x on a concat-heavy render (they win asymptotically: one O(ranges)
    flatten at the boundary vs one rope copy per append)."""
    pieces = _pieces(600)

    def lazy():
        _render_once(pieces).rangemap.ranges

    def forced_eager():
        page = TaintedStr("")
        for piece in pieces:
            page = page + "<div class='post'>" + piece + "</div>\n"
            page.rangemap.ranges  # flatten per append = pre-rope behaviour

    lazy_time = _best_of(lazy)
    eager_time = _best_of(forced_eager)
    ratio = eager_time / lazy_time
    assert ratio >= 2.0, f"lazy render only {ratio:.1f}x faster than eager"


# -- real page renders -----------------------------------------------------------


@pytest.fixture(scope="module")
def hotcrp_workloads():
    return hotcrp_perf.build_workloads()


@pytest.fixture(scope="module")
def phpbb_board():
    from repro.apps.phpbb import PhpBB

    board = PhpBB()
    board.create_forum(1, "general")
    for msg_id in range(1, 9):
        board.post_message(
            msg_id,
            1,
            "author",
            f"subject {msg_id}",
            ("lorem ipsum dolor sit amet " * 40) + f"[post {msg_id}]",
        )
    return board


def test_hotcrp_page_render(benchmark, hotcrp_workloads):
    workload = hotcrp_workloads["resin"]
    benchmark.group = "taint-page-render"
    benchmark.extra_info["app"] = "hotcrp"
    body = benchmark(workload.generate_page)
    assert "Improving Application Security" in body


def test_phpbb_topic_render(benchmark, phpbb_board):
    benchmark.group = "taint-page-render"
    benchmark.extra_info["app"] = "phpbb"

    def render():
        bodies = []
        for msg_id in range(1, 9):
            bodies.append(phpbb_board.view_message(msg_id, "author").body())
        return bodies

    bodies = benchmark(render)
    assert all("lorem ipsum" in body for body in bodies)


# -- concat / slice / join / merge micros at 1/4/16 workers ----------------------


def _make_task(operation):
    base = taint_str("x" * 512, AUTHOR)
    big = taint_str("y" * 4096, SIGNATURE)
    pieces = _pieces(32)
    left = PolicySet.of(AUTHOR)
    right = PolicySet.of(SIGNATURE)

    if operation == "concat":

        def task():
            out = TaintedStr("")
            for _ in range(32):
                out = out + base + "tail"
            return out

    elif operation == "slice":

        def task():
            for index in range(32):
                big[index : index + 1024]

    elif operation == "join":
        sep = TaintedStr(", ")

        def task():
            return sep.join(pieces)

    else:  # merge

        def task():
            for _ in range(32):
                merge_policysets(left, right)

    return task


@pytest.mark.parametrize("workers", [1, 4, 16])
@pytest.mark.parametrize("operation", ["concat", "slice", "join", "merge"])
def test_taint_micro(benchmark, operation, workers):
    benchmark.group = f"taint-micro:{operation}"
    benchmark.extra_info["workers"] = workers
    task = _make_task(operation)
    if workers == 1:
        benchmark(task)
        return
    pool = ThreadPoolExecutor(max_workers=workers)

    def parallel():
        futures = [pool.submit(task) for _ in range(workers)]
        for future in futures:
            future.result()

    try:
        benchmark(parallel)
    finally:
        pool.shutdown(wait=True)


# -- merge_many fold regression --------------------------------------------------


def test_merge_many_interned_fold(benchmark):
    """Regression for the quadratic left-fold: folding operands that share
    interned provenance must ride the same-set/memo fast paths instead of
    rebuilding a fresh set per operand."""
    operands = [PolicySet.of(AUTHOR)] * 256 + [PolicySet.of(SIGNATURE)] * 256
    benchmark.group = "taint-merge-many"
    result = benchmark(lambda: merge_many(operands))
    assert result == {AUTHOR, SIGNATURE}


def test_merge_many_fold_uses_fast_paths():
    clear_merge_cache()
    operands = [PolicySet.of(AUTHOR)] * 512 + [PolicySet.of(SIGNATURE)] * 512
    result = merge_many(operands)
    info = merge_cache_info()
    assert result == {AUTHOR, SIGNATURE}
    # Same-set folds never touch the protocol; only the two distinct pairs
    # (AUTHOR, SIGNATURE-singleton) and (merged, SIGNATURE-singleton) miss.
    assert info["misses"] <= 2
    assert info["hits"] >= 500
