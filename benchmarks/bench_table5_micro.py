"""Experiment E4: Table 5 microbenchmarks.

Times each operation of Table 5 in the three configurations (unmodified /
RESIN without policy / RESIN with an empty policy).  Compare groups with::

    pytest benchmarks/bench_table5_micro.py --benchmark-only \
        --benchmark-group-by=param:operation

Absolute numbers are far from the paper's (a pure-Python tracking layer vs. a
patched C interpreter); the shape to look for is the paper's: propagation
operations gain a small overhead, policy-present merges cost more, file
operations pay for xattr (de)serialization, and SQL dominates because every
query is parsed and rewritten.
"""

import pytest

from repro.evaluation import table5


@pytest.fixture(scope="module")
def suites():
    return table5.build_suites()


@pytest.mark.parametrize("operation", table5.OPERATIONS)
@pytest.mark.parametrize("configuration", table5.CONFIGURATIONS)
def test_table5_operation(benchmark, suites, configuration, operation):
    suite = suites[configuration]
    benchmark.group = f"table5:{operation}"
    benchmark.extra_info["configuration"] = configuration
    benchmark.extra_info["paper_microseconds"] = dict(zip(
        table5.CONFIGURATIONS,
        table5.PAPER_TABLE5_MICROSECONDS[operation]))
    benchmark(suite.operation(operation))
