"""Experiment E5: HotCRP application performance (Section 7.1).

Generates the paper-view page for a PC member with and without RESIN and
reports the overhead ratio next to the paper's 88 ms / 66 ms = 1.33×.
"""

import time

import pytest

from repro.evaluation import hotcrp_perf


@pytest.fixture(scope="module")
def workloads():
    return hotcrp_perf.build_workloads()


@pytest.mark.parametrize("configuration",
                         ["unmodified", "resin", "resin-enforce"])
def test_hotcrp_page_generation(benchmark, workloads, configuration):
    workload = workloads[configuration]
    benchmark.group = "hotcrp-paper-page"
    benchmark.extra_info["configuration"] = configuration
    benchmark.extra_info["page_bytes"] = workload.page_size()
    body = benchmark(workload.generate_page)
    assert "Improving Application Security" in body


def test_hotcrp_overhead_ratio(benchmark, workloads, capsys):
    """Measure the two configurations back to back and report the ratio."""

    def time_workload(workload, rounds=30):
        workload.generate_page()          # warm-up
        start = time.perf_counter()
        for _ in range(rounds):
            workload.generate_page()
        return (time.perf_counter() - start) / rounds

    plain = time_workload(workloads["unmodified"])
    benchmark(workloads["resin"].generate_page)
    resin = benchmark.stats.stats.mean
    ratio = resin / plain
    benchmark.group = "hotcrp-paper-page"
    benchmark.extra_info["overhead_ratio"] = round(ratio, 2)
    benchmark.extra_info["paper_ratio"] = round(
        hotcrp_perf.PAPER_OVERHEAD_RATIO, 2)

    with capsys.disabled():
        print()
        print("=== Section 7.1: HotCRP paper-page generation ===")
        print(f"  unmodified : {plain * 1000:8.2f} ms/page "
              f"(paper: 66 ms on a 2.3 GHz Xeon)")
        print(f"  RESIN      : {resin * 1000:8.2f} ms/page (paper: 88 ms)")
        print(f"  overhead   : {ratio:8.2f}x   "
              f"(paper: {hotcrp_perf.PAPER_OVERHEAD_RATIO:.2f}x)")

    # Shape check: RESIN costs something, but page generation remains the
    # same order of magnitude (the paper reports 1.33x; our pure-Python
    # tracking layer lands higher, but must stay within a small multiple).
    assert ratio > 1.0
    assert ratio < 25.0
